// Worker pool for the experiment runners: independent grid points fan out
// across OS threads while every simulation stays single-threaded and
// deterministic per seed. Results are collected by point index, never by
// completion order, so a parallel run's output is byte-identical to a
// serial one.
package repro

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a -j flag value: non-positive means one worker per
// available CPU (GOMAXPROCS).
func Workers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// ForEach runs fn(0..n-1) across up to workers goroutines. Every index runs
// regardless of other indices' failures; the returned error is the
// smallest-index one, so the outcome does not depend on completion order. A
// panic inside fn is captured into that index's error instead of killing
// the process.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachW(n, workers, func(_, i int) error { return fn(i) })
}

// ForEachW is ForEach with the worker id (0..workers-1) passed to fn, so
// callers that report live progress can attribute in-flight points to
// workers. The worker id must not influence results — it is observability
// only.
func ForEachW(n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = runGuarded(0, i, fn)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = runGuarded(w, i, fn)
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runGuarded invokes fn(w, i), converting a panic into an error carrying
// the stack, so one broken grid point reports instead of tearing down the
// whole sweep.
func runGuarded(w, i int, fn func(int, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("point %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(w, i)
}
