package repro

import (
	"reflect"
	"testing"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/flows"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// miniScale is a trimmed churn grid for runner tests: small live sets so a
// 300 ms point finishes in milliseconds of wall clock.
func miniScale() Experiment {
	pt := func(label, cc string, live int) Point {
		s := baseSpec(device.LowEnd, cc, 1)
		s.Flows = &flows.Config{
			ArrivalRate:  2000,
			MaxLive:      live,
			InitialFlows: live,
			MiceBytes:    4 * units.KB,
		}
		return Point{Label: label, Spec: s}
	}
	return Experiment{
		ID:    "miniscale",
		Title: "trimmed churn grid",
		Points: []Point{
			pt("64 cubic", "cubic", 64),
			pt("64 bbr", "bbr", 64),
			pt("256 bbr", "bbr", 256),
		},
	}
}

// TestScaleInListingNotInAll: the churn grid is reachable by id but stays
// out of All(), which keeps -exp all output (and the golden corpus behind
// it) byte-identical to the pre-churn tree.
func TestScaleInListingNotInAll(t *testing.T) {
	e, err := ByID("scale")
	if err != nil {
		t.Fatalf("ByID(scale): %v", err)
	}
	if e.ID != "scale" || len(e.Points) == 0 {
		t.Fatalf("scale experiment malformed: id=%q points=%d", e.ID, len(e.Points))
	}
	for _, p := range e.Points {
		if p.Spec.Flows == nil {
			t.Errorf("scale point %q has no flows config", p.Label)
		}
	}
	for _, all := range All() {
		if all.ID == "scale" {
			t.Fatal("scale leaked into All(); -exp all output would change")
		}
	}
}

// TestScaleParallelMatchesSerial is the churn grid's determinism gate:
// flows rows — counters, FCT percentiles, pool census, fast-path share —
// must be deep-equal at -j 1 and -j 8.
func TestScaleParallelMatchesSerial(t *testing.T) {
	e := miniScale()
	dur := 300 * time.Millisecond
	serial, err := RunExperimentPool(e, dur, 2, telemetry.Config{}, 1)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	par, err := RunExperimentPool(e, dur, 2, telemetry.Config{}, 8)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(stripSample(serial), stripSample(par)) {
		t.Error("rows differ between -j 1 and -j 8")
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Sample.Report, par[i].Sample.Report) {
			t.Errorf("point %d: sample report differs between -j 1 and -j 8", i)
		}
		if !reflect.DeepEqual(serial[i].Sample.Flows, par[i].Sample.Flows) {
			t.Errorf("point %d: churn stats differ between -j 1 and -j 8", i)
		}
	}
	for i, r := range serial {
		if r.FlowsStarted == 0 {
			t.Errorf("point %d: no flows started", i)
		}
	}
}

// TestScaleJournalRoundTrip: every flows column survives the journal codec
// — a resumed grid must print the same table an uninterrupted one did.
func TestScaleJournalRoundTrip(t *testing.T) {
	p := Point{Label: "churn pt", Spec: core.Spec{CC: "bbr"}}
	r := Row{
		Point:          p,
		GoodputMbps:    123.4,
		RTTms:          8.5,
		Retransmits:    17,
		CPUUtil:        0.93,
		FlowsStarted:   12_345,
		FlowsCompleted: 11_111,
		FlowsPeakLive:  512,
		FCTP50ms:       42.5,
		FCTP99ms:       900.25,
		FastPathShare:  0.703,
		Events:         987654,
	}
	got := entryFromRow(3, r).row(p)
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("journal round trip diverged:\n got  %+v\n want %+v", got, r)
	}
}

// TestScaleArchiveCarriesFlowMetrics: the obs archive point record carries
// the churn metrics, so rollup and mobbr-diff see them.
func TestScaleArchiveCarriesFlowMetrics(t *testing.T) {
	e := miniScale()
	e.Points = e.Points[:1]
	rows, err := RunExperimentPool(e, 300*time.Millisecond, 1, telemetry.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	run, err := BuildExperimentRun(e, rows, ArchiveOpts{Dur: 300 * time.Millisecond, Seeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := run.Points[0].Metrics
	if m.FlowsStarted != rows[0].FlowsStarted || m.FlowsCompleted != rows[0].FlowsCompleted {
		t.Errorf("archive flow counts %d/%d != row %d/%d",
			m.FlowsStarted, m.FlowsCompleted, rows[0].FlowsStarted, rows[0].FlowsCompleted)
	}
	if m.FCTP99ms != rows[0].FCTP99ms || m.FastPathShare != rows[0].FastPathShare {
		t.Errorf("archive FCT/fast-path %v/%v != row %v/%v",
			m.FCTP99ms, m.FastPathShare, rows[0].FCTP99ms, rows[0].FastPathShare)
	}
}
