package repro

import (
	"testing"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/iperf"
	"mobbr/internal/units"
)

const recoverySeeds = 2

// runRecoveryOnce memoises one full experiment run for the package tests.
var recoveryRows []RecoveryRow

func runRecoveryOnce(t *testing.T) []RecoveryRow {
	t.Helper()
	if recoveryRows != nil {
		return recoveryRows
	}
	rows, err := RunRecovery(Recovery(), recoverySeeds)
	if err != nil {
		t.Fatalf("RunRecovery: %v", err)
	}
	recoveryRows = rows
	return rows
}

// TestRecoveryAllPointsRecover: after both fault patterns the transfer must
// regain 90% of pre-fault goodput before run end, on every CC and CPU
// configuration, for every seed — with the invariant checker armed.
func TestRecoveryAllPointsRecover(t *testing.T) {
	rows := runRecoveryOnce(t)
	if len(rows) != 12 {
		t.Fatalf("expected 12 points, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Recovered != r.Seeds {
			t.Errorf("%s: only %d/%d seeds recovered", r.Point.Label, r.Recovered, r.Seeds)
		}
		if r.PreFaultMbps <= 0 {
			t.Errorf("%s: no pre-fault goodput", r.Point.Label)
		}
		if r.RecoveryMs <= 0 {
			t.Errorf("%s: non-positive recovery time %v ms", r.Point.Label, r.RecoveryMs)
		}
	}
}

// TestRecoveryWithinOneRTOOfLinkReturn: the hardened sender (F-RTO undo,
// capped backoff) must resume goodput promptly once the link is back. After a
// 2 s blackout the backed-off RTO is over a second, so recovering inside
// 1000 ms demonstrates the retransmit path is not waiting out stale timers.
func TestRecoveryWithinOneRTOOfLinkReturn(t *testing.T) {
	for _, r := range runRecoveryOnce(t) {
		if r.RecoveryMs > 1000 {
			t.Errorf("%s: recovery took %.0f ms, want within one RTO (<=1000 ms) of link return",
				r.Point.Label, r.RecoveryMs)
		}
	}
}

// TestRecoveryBBRNotFasterThanCubic: the paper's framing — BBR's gains come
// from steady-state pacing, not faster loss recovery. On the Low-End blackout
// cell BBR must not recover faster than Cubic.
func TestRecoveryBBRNotFasterThanCubic(t *testing.T) {
	rows := runRecoveryOnce(t)
	byLabel := map[string]RecoveryRow{}
	for _, r := range rows {
		byLabel[r.Point.Label] = r
	}
	bbr, ok1 := byLabel["bbr blackout Low-End"]
	cubic, ok2 := byLabel["cubic blackout Low-End"]
	if !ok1 || !ok2 {
		t.Fatalf("missing Low-End blackout cells: %v", byLabel)
	}
	if bbr.RecoveryMs < cubic.RecoveryMs {
		t.Errorf("BBR recovered in %.0f ms, faster than Cubic's %.0f ms on Low-End blackout",
			bbr.RecoveryMs, cubic.RecoveryMs)
	}
}

// TestRecoverySpuriousRTOAfterBlackout: the LTE radio holds (not drops)
// packets during a blackout, so the first post-resume ACK echoes an original
// transmission sent before the RTO — F-RTO must detect and undo it.
func TestRecoverySpuriousRTOAfterBlackout(t *testing.T) {
	for _, r := range runRecoveryOnce(t) {
		if r.Point.Fault != FaultBlackout {
			continue
		}
		if r.SpuriousRTOs < 1 {
			t.Errorf("%s: expected at least one F-RTO-detected spurious timeout, got %.1f",
				r.Point.Label, r.SpuriousRTOs)
		}
	}
}

// TestRecoveryDeterministicPerSeed: a point rerun with the same seed must
// produce the identical interval series and recovery time.
func TestRecoveryDeterministicPerSeed(t *testing.T) {
	p := Recovery().Points[0]
	run := func() []iperf.Interval {
		spec := p.Spec
		spec.Seed = 7
		res, err := core.Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", p.Label, err)
		}
		return res.Report.Intervals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("interval counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interval %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRecoveryTimeCensoring exercises the metric extraction directly.
func TestRecoveryTime(t *testing.T) {
	mk := func(goodputs ...float64) []iperf.Interval {
		ivals := make([]iperf.Interval, len(goodputs))
		for i, g := range goodputs {
			ivals[i] = iperf.Interval{
				Start:   time.Duration(i) * time.Second,
				End:     time.Duration(i+1) * time.Second,
				Goodput: units.Bandwidth(g),
			}
		}
		return ivals
	}
	warmup, faultStart, faultEnd, dur := 1*time.Second, 3*time.Second, 5*time.Second, 10*time.Second

	// Baseline 100 over [1s,3s); dips to 10 during the fault; back at 95
	// (>=90) in the interval ending at 8s → recovery 3s after faultEnd.
	pre, rec, ok := recoveryTime(mk(50, 100, 100, 10, 10, 10, 50, 95, 100, 100),
		warmup, faultStart, faultEnd, dur)
	if !ok || pre != 100 || rec != 3*time.Second {
		t.Errorf("got pre=%v rec=%v ok=%v, want 100/3s/true", pre, rec, ok)
	}

	// Never regains 90%: censored at run end, ok=false.
	pre, rec, ok = recoveryTime(mk(50, 100, 100, 10, 10, 10, 50, 60, 70, 80),
		warmup, faultStart, faultEnd, dur)
	if ok || pre != 100 || rec != dur-faultEnd {
		t.Errorf("got pre=%v rec=%v ok=%v, want 100/5s/false", pre, rec, ok)
	}
}
