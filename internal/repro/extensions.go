package repro

import (
	"fmt"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/netem"
	"mobbr/internal/units"
)

// The experiments below go beyond the paper's evaluation into the open
// questions its §7 discussion raises. They use the same Point/Experiment
// machinery so cmd/mobbr-repro and the benchmarks can drive them.

// FairnessVsStride probes §7.1.3: "pacing strides may increase the
// unfairness of BBR". Each point reports per-connection goodput whose
// Jain index the harness scores (iperf.Report.Fairness).
func FairnessVsStride() Experiment {
	var pts []Point
	for _, st := range []float64{1, 5, 10, 50} {
		s := baseSpec(device.LowEnd, "bbr", 20)
		s.Stride = st
		pts = append(pts, Point{Label: fmt.Sprintf("bbr %gx", st), Spec: s})
	}
	pts = append(pts, Point{Label: "cubic (unpaced ref)", Spec: baseSpec(device.LowEnd, "cubic", 20)})
	return Experiment{
		ID:     "fairness",
		Title:  "Jain fairness across pacing strides, Low-End, 20 conns (§7.1.3)",
		Points: pts,
	}
}

// HardwarePacing probes §7.1.4: offloading per-send timers to the NIC as
// the alternative to strides — pacing's gaps without its CPU cost.
func HardwarePacing() Experiment {
	var pts []Point
	for _, cfg := range []device.Config{device.LowEnd, device.MidEnd, device.Default} {
		stock := baseSpec(cfg, "bbr", 20)
		hw := stock
		hw.HardwarePacing = true
		stride := stock
		stride.Stride = 10
		pts = append(pts,
			Point{Label: fmt.Sprintf("%s stock", cfg), Spec: stock},
			Point{Label: fmt.Sprintf("%s stride-10x", cfg), Spec: stride},
			Point{Label: fmt.Sprintf("%s hw-offload", cfg), Spec: hw},
		)
	}
	return Experiment{
		ID:     "hwpacing",
		Title:  "Hardware pacing offload vs stride vs stock (§7.1.4)",
		Points: pts,
	}
}

// FiveG probes the prediction of §4/Appendix A.1: a ~200 Mbps 5G mmWave
// uplink provides enough capacity that the pacing bottleneck, invisible on
// LTE, reappears on low-end hardware.
func FiveG() Experiment {
	var pts []Point
	for _, cc := range []string{"cubic", "bbr"} {
		for _, n := range Conns {
			s := baseSpec(device.LowEnd, cc, n)
			s.Device = device.Pixel6
			s.Network = core.Cellular5G
			// A 200 Mbps × ~20 ms path needs a bigger send buffer
			// than the LAN default; Android's wmem auto-tuning
			// would grow it to about this.
			s.SndBuf = units.MB
			pts = append(pts, Point{Label: fmt.Sprintf("%s/%d", cc, n), Spec: s})
		}
	}
	return Experiment{
		ID:     "fiveg",
		Title:  "5G mmWave uplink (~200 Mbps): does the pacing gap reappear?",
		Points: pts,
	}
}

// ECN probes the v2 feature set the paper's backport carries but its
// testbed never enables: with AQM marking at the router, BBRv2 (and
// classic-ECN Cubic) should keep goodput while retransmissions vanish —
// the polite version of the shallow-buffer experiment.
func ECN() Experiment {
	// High-End device so the 600 Mbps router cap — not the CPU — is the
	// bottleneck; congestion then happens where the AQM can see it.
	tc := netem.TC{Rate: 600 * units.Mbps, QueuePackets: 60}
	tcECN := tc
	tcECN.ECNThreshold = 15
	var pts []Point
	for _, cc := range []string{"bbr2", "cubic"} {
		plain := baseSpec(device.HighEnd, cc, 20)
		plain.TC = tc
		ecn := plain
		ecn.TC = tcECN
		pts = append(pts,
			Point{Label: cc + " drop-only", Spec: plain},
			Point{Label: cc + " +ecn", Spec: ecn},
		)
	}
	return Experiment{
		ID:     "ecn",
		Title:  "ECN marking vs drop-only AQM, High-End, 20 conns (extension)",
		Points: pts,
	}
}
