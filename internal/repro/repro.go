// Package repro defines one constructor per table and figure of the paper's
// evaluation, returning ready-to-run core.Specs together with the values the
// paper reports. cmd/mobbr-repro and the top-level benchmarks drive these to
// regenerate every experiment; EXPERIMENTS.md records paper-vs-measured.
package repro

import (
	"fmt"
	"time"

	"mobbr/internal/apps"
	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/flows"
	"mobbr/internal/netem"
	"mobbr/internal/units"
)

// Point is one cell of a figure or table: a spec plus the paper's value
// (when the paper states one; 0 means "shown in a figure, value not given
// numerically").
type Point struct {
	// Label names the cell, e.g. "bbr 20conns Low-End".
	Label string
	// Spec is the experiment to run.
	Spec core.Spec
	// PaperMbps is the goodput the paper reports, when stated.
	PaperMbps float64
	// PaperRTTms is the RTT the paper reports, when stated.
	PaperRTTms float64
}

// Experiment is a named set of points reproducing one table or figure.
type Experiment struct {
	// ID is the paper anchor, e.g. "fig2", "table2".
	ID string
	// Title describes what the experiment shows.
	Title string
	// Points are the cells, in presentation order.
	Points []Point
}

// Conns is the connection sweep the paper uses throughout.
var Conns = []int{1, 5, 10, 20}

// Strides is the pacing-stride sweep of §6.2.
var Strides = []float64{1, 2, 5, 10, 20, 50}

// baseSpec returns the common Ethernet/Pixel 4 spec.
func baseSpec(cfg device.Config, ccName string, conns int) core.Spec {
	return core.Spec{
		Device:  device.Pixel4,
		CPU:     cfg,
		CC:      ccName,
		Conns:   conns,
		Network: core.Ethernet,
	}
}

// Figure2 is the headline result: BBR vs Cubic goodput on the Pixel 4 over
// Ethernet for all four CPU configurations and 1–20 connections.
func Figure2() Experiment {
	paper := map[string]float64{
		// The values the text states explicitly.
		"Low-End/cubic/1":  364,
		"Low-End/cubic/20": 310,
		"Low-End/bbr/1":    325,
		"Low-End/bbr/20":   138,
		"High-End/bbr/1":   915,
		"High-End/cubic/1": 930,
	}
	var pts []Point
	for _, cfg := range []device.Config{device.LowEnd, device.MidEnd, device.Default, device.HighEnd} {
		for _, cc := range []string{"cubic", "bbr"} {
			for _, n := range Conns {
				key := fmt.Sprintf("%s/%s/%d", cfg, cc, n)
				pts = append(pts, Point{
					Label:     key,
					Spec:      baseSpec(cfg, cc, n),
					PaperMbps: paper[key],
				})
			}
		}
	}
	return Experiment{ID: "fig2", Title: "BBR vs Cubic goodput, Pixel 4, Ethernet (Figure 2)", Points: pts}
}

// Figure3 repeats the Low-End sweep on the Pixel 6: BBR ends ~45% below
// Cubic at 20 connections.
func Figure3() Experiment {
	var pts []Point
	for _, cc := range []string{"cubic", "bbr"} {
		for _, n := range Conns {
			s := baseSpec(device.LowEnd, cc, n)
			s.Device = device.Pixel6
			pts = append(pts, Point{
				Label: fmt.Sprintf("%s/%d", cc, n),
				Spec:  s,
			})
		}
	}
	return Experiment{ID: "fig3", Title: "Pixel 6 Low-End goodput (Figure 3)", Points: pts}
}

// BBR2WiFi is §4.2: BBRv2 vs BBR vs Cubic on the Pixel 6 over WiFi,
// Low-End, 20 connections. The paper reports Cubic→BBR −23% and
// Cubic→BBRv2 −20%.
func BBR2WiFi() Experiment {
	var pts []Point
	for _, cc := range []string{"cubic", "bbr", "bbr2"} {
		s := baseSpec(device.LowEnd, cc, 20)
		s.Device = device.Pixel6
		s.Network = core.WiFi
		pts = append(pts, Point{Label: cc, Spec: s})
	}
	return Experiment{ID: "bbr2", Title: "BBRv2 on Pixel 6 WiFi, Low-End, 20 conns (§4.2)", Points: pts}
}

// ModelOff is §5.1.1: BBR with its model-update disabled and a Cubic-like
// fixed cwnd of 70 packets still underperforms.
func ModelOff() Experiment {
	withModel := baseSpec(device.LowEnd, "bbr", 20)
	noModel := withModel
	noModel.DisableModel = true
	noModel.FixedCwnd = 70
	noModel.FixedPacingRate = 16 * units.Mbps // theoretical per-conn need (§5.1.2)
	cubic := baseSpec(device.LowEnd, "cubic", 20)
	return Experiment{
		ID:    "modeloff",
		Title: "BBR model disabled, fixed cwnd=70 (§5.1.1)",
		Points: []Point{
			{Label: "bbr (stock)", Spec: withModel, PaperMbps: 138},
			{Label: "bbr model-off cwnd=70 rate=16Mbps", Spec: noModel},
			{Label: "cubic", Spec: cubic, PaperMbps: 310},
		},
	}
}

// FixedPacingRate is §5.1.2: sweeping the per-connection pacing rate with
// fixed cwnd; only ≈140 Mbps/conn reaches Cubic's goodput even though
// 16 Mbps/conn would suffice in theory.
func FixedPacingRate() Experiment {
	rates := []units.Bandwidth{
		16 * units.Mbps, 20 * units.Mbps, 40 * units.Mbps,
		70 * units.Mbps, 100 * units.Mbps, 140 * units.Mbps,
	}
	var pts []Point
	for _, r := range rates {
		s := baseSpec(device.LowEnd, "bbr", 20)
		s.FixedCwnd = 70
		s.FixedPacingRate = r
		pts = append(pts, Point{Label: r.String() + "/conn", Spec: s})
	}
	pts = append(pts, Point{Label: "cubic reference", Spec: baseSpec(device.LowEnd, "cubic", 20), PaperMbps: 310})
	return Experiment{ID: "fixedrate", Title: "Fixed per-connection pacing rate sweep (§5.1.2)", Points: pts}
}

// Figure4 compares BBR goodput with pacing on vs off at 20 connections for
// Low-End (2.7×), Mid-End (+67%) and Default (+91%).
func Figure4() Experiment {
	off := false
	var pts []Point
	for _, cfg := range []device.Config{device.LowEnd, device.MidEnd, device.Default} {
		on := baseSpec(cfg, "bbr", 20)
		no := on
		no.PacingOverride = &off
		pts = append(pts,
			Point{Label: fmt.Sprintf("%s pacing-on", cfg), Spec: on},
			Point{Label: fmt.Sprintf("%s pacing-off", cfg), Spec: no},
		)
	}
	pts[0].PaperMbps = 138
	pts[1].PaperMbps = 373 // 2.7× of 138
	return Experiment{ID: "fig4", Title: "Effect of pacing on BBR goodput, 20 conns (Figure 4)", Points: pts}
}

// Figure5 is the pacing on/off comparison across connection counts at
// Low-End: +14% at 1 conn, +19% at 5, 2.7× at 20.
func Figure5() Experiment {
	off := false
	var pts []Point
	for _, n := range Conns {
		on := baseSpec(device.LowEnd, "bbr", n)
		no := on
		no.PacingOverride = &off
		pts = append(pts,
			Point{Label: fmt.Sprintf("%dconns pacing-on", n), Spec: on},
			Point{Label: fmt.Sprintf("%dconns pacing-off", n), Spec: no},
		)
	}
	return Experiment{ID: "fig5", Title: "Pacing on/off across connection counts, Low-End (Figure 5)", Points: pts}
}

// Figure6 enables pacing for Cubic (§5.2.2): internal-rate pacing and a
// 20 Mbps fixed rate collapse goodput (147 Mbps at 20 Mbps×20 conns);
// 140 Mbps ≈ unpaced.
func Figure6() Experiment {
	on := true
	def := baseSpec(device.LowEnd, "cubic", 20)

	paced := def
	paced.PacingOverride = &on

	rate20 := paced
	rate20.FixedPacingRate = 20 * units.Mbps

	rate140 := paced
	rate140.FixedPacingRate = 140 * units.Mbps

	return Experiment{
		ID:    "fig6",
		Title: "Cubic with pacing enabled, Low-End, 20 conns (Figure 6)",
		Points: []Point{
			{Label: "default (no pacing)", Spec: def, PaperMbps: 310},
			{Label: "pacing on (internal rate)", Spec: paced},
			{Label: "pacing 20Mbps/conn", Spec: rate20, PaperMbps: 147},
			{Label: "pacing 140Mbps/conn", Spec: rate140},
		},
	}
}

// Figure7 measures RTT with pacing on vs off at 20 connections: RTT more
// than doubles when pacing is disabled.
func Figure7() Experiment {
	off := false
	var pts []Point
	for _, cfg := range []device.Config{device.LowEnd, device.MidEnd, device.Default} {
		on := baseSpec(cfg, "bbr", 20)
		no := on
		no.PacingOverride = &off
		pts = append(pts,
			Point{Label: fmt.Sprintf("%s pacing-on", cfg), Spec: on},
			Point{Label: fmt.Sprintf("%s pacing-off", cfg), Spec: no},
		)
	}
	return Experiment{ID: "fig7", Title: "RTT with and without pacing, 20 conns (Figure 7)", Points: pts}
}

// ShallowBuffer is §5.2.3: a 10-packet router buffer. Disabling pacing
// raises retransmissions from 37 to ~13,500. The router is rate-limited so
// that unpaced bursts actually overrun the shallow queue (the paper's tc
// knob; see DESIGN.md).
func ShallowBuffer() Experiment {
	off := false
	tc := netem.TC{Rate: 600 * units.Mbps, QueuePackets: 10}
	on := baseSpec(device.LowEnd, "bbr", 20)
	on.TC = tc
	no := on
	no.PacingOverride = &off
	return Experiment{
		ID:    "shallow",
		Title: "10-packet shallow buffer: retransmissions (§5.2.3)",
		Points: []Point{
			{Label: "pacing-on", Spec: on},
			{Label: "pacing-off", Spec: no},
		},
	}
}

// Figure8 sweeps the pacing stride {1,2,5,10,20,50} for Low-End, Mid-End
// and Default at 20 connections: best ≈10× for Low-End, ≈5× for
// Mid-End/Default; Default improves from ≈400 to >700 Mbps.
func Figure8() Experiment {
	var pts []Point
	for _, cfg := range []device.Config{device.LowEnd, device.MidEnd, device.Default} {
		for _, st := range Strides {
			s := baseSpec(cfg, "bbr", 20)
			s.Stride = st
			pts = append(pts, Point{
				Label: fmt.Sprintf("%s %gx", cfg, st),
				Spec:  s,
			})
		}
	}
	return Experiment{ID: "fig8", Title: "Pacing-stride sweep (Figure 8)", Points: pts}
}

// Table2 samples per-pacing-period behaviour under the Default
// configuration at 20 connections for each stride: skb length, idle time,
// expected vs actual throughput, RTT.
func Table2() Experiment {
	paperGoodput := map[float64]float64{1: 430, 2: 580, 5: 717, 10: 416, 20: 185, 50: 75.6}
	paperRTT := map[float64]float64{1: 3.7, 2: 2.2, 5: 1.4, 10: 1.1, 20: 1.3, 50: 1.4}
	var pts []Point
	for _, st := range Strides {
		s := baseSpec(device.Default, "bbr", 20)
		s.Stride = st
		pts = append(pts, Point{
			Label:      fmt.Sprintf("%gx", st),
			Spec:       s,
			PaperMbps:  paperGoodput[st],
			PaperRTTms: paperRTT[st],
		})
	}
	return Experiment{ID: "table2", Title: "Stride anatomy under Default config (Table 2)", Points: pts}
}

// Figure9 is Appendix A.1: over LTE the uplink is bandwidth-limited
// (<20 Mbps) and BBR ≈ Cubic for every connection count.
func Figure9() Experiment {
	var pts []Point
	for _, cc := range []string{"cubic", "bbr"} {
		for _, n := range Conns {
			s := baseSpec(device.LowEnd, cc, n)
			s.Device = device.Pixel6
			s.Network = core.Cellular
			pts = append(pts, Point{Label: fmt.Sprintf("%s/%d", cc, n), Spec: s})
		}
	}
	return Experiment{ID: "fig9", Title: "Cellular (LTE) goodput: BBR ≈ Cubic (Figure 9)", Points: pts}
}

// Memory is §7.1.1: RAM (socket-buffer occupancy) is unaffected by pacing
// strides under Low-End, 20 connections.
func Memory() Experiment {
	var pts []Point
	for _, st := range []float64{1, 10, 50} {
		s := baseSpec(device.LowEnd, "bbr", 20)
		s.Stride = st
		pts = append(pts, Point{Label: fmt.Sprintf("%gx", st), Spec: s})
	}
	return Experiment{ID: "memory", Title: "Memory use across strides (§7.1.1)", Points: pts}
}

// Apps is the application-workload grid: instead of bulk iperf uploads,
// every point drives an application over the virtual-time net.Conn facade
// (internal/simnet + internal/apps) — closed-loop request/response clients
// and an ABR-video-like chunked stream — and reports request-latency
// quantiles and rebuffering alongside goodput. The paper measures bulk
// transfer; this grid asks the follow-up question its §6 CPU findings
// raise: what do BBR's pacing costs do to application-level latency on
// weak cores, and does the stride mitigation help there too?
func Apps() Experiment {
	appConns := 6
	var pts []Point
	// Request/response across the CPU extremes and both CCs.
	for _, cfg := range []device.Config{device.LowEnd, device.Default} {
		for _, cc := range []string{"cubic", "bbr"} {
			s := baseSpec(cfg, cc, appConns)
			s.Workload = apps.Workload{Kind: apps.KindReqRep}
			pts = append(pts, Point{
				Label: fmt.Sprintf("reqrep %s/%s", cfg, cc),
				Spec:  s,
			})
		}
	}
	// Request p99 vs pacing stride on Low-End bbr: the §6.2 stride
	// mitigation viewed through application latency (EXPERIMENTS.md table).
	for _, st := range []float64{5, 10, 20} {
		s := baseSpec(device.LowEnd, "bbr", appConns)
		s.Stride = st
		s.Workload = apps.Workload{Kind: apps.KindReqRep}
		pts = append(pts, Point{
			Label: fmt.Sprintf("reqrep Low-End/bbr %gx", st),
			Spec:  s,
		})
	}
	// Chunked streaming: same CPU×CC square plus the stride mitigation.
	for _, cfg := range []device.Config{device.LowEnd, device.Default} {
		for _, cc := range []string{"cubic", "bbr"} {
			s := baseSpec(cfg, cc, appConns)
			s.Workload = apps.Workload{Kind: apps.KindStream}
			pts = append(pts, Point{
				Label: fmt.Sprintf("stream %s/%s", cfg, cc),
				Spec:  s,
			})
		}
	}
	{
		s := baseSpec(device.LowEnd, "bbr", appConns)
		s.Stride = 10
		s.Workload = apps.Workload{Kind: apps.KindStream}
		pts = append(pts, Point{Label: "stream Low-End/bbr 10x", Spec: s})
	}
	return Experiment{ID: "apps", Title: "Application workloads over simnet: request latency and rebuffering", Points: pts}
}

// Scale is the million-flow data path grid: open-loop Poisson flow churn
// with a heavy-tailed elephant/mice size mix through the pooled conn
// lifecycle (internal/flows), reporting flow-completion-time percentiles,
// peak concurrency and the fast-path share of the flow-table cost model.
// The square crosses CC × CPU at 10k live flows; the live sweep holds the
// per-slot turnover fixed while growing the live set 1k→100k (per-sample
// accounting must stay O(1) for the 100k point to fit the run budget); the
// churn sweep holds 10k live and scales the arrival rate 0.5×/2×/8×. It is
// deliberately not part of All() — it measures the harness's data path,
// not a paper figure — and runs with -exp scale.
func Scale() Experiment {
	churn := func(cfg device.Config, ccName string, live int, arrival float64, check bool) core.Spec {
		s := baseSpec(cfg, ccName, 1) // Conns is ignored when Flows is set
		s.Flows = &flows.Config{
			ArrivalRate:  arrival,
			MaxLive:      live,
			InitialFlows: live, // steady-state concurrency from t=0
			// 4 KB mice: at 10k live flows sharing a CPU-bound ~400 Mbps,
			// each flow gets ~40 kbps, so a mouse completes in about a
			// second and the live set genuinely turns over within the
			// default 4 s horizon (the stock 20 KB mice would all get cut
			// off by the run end and the churn sweep would show nothing).
			MiceBytes: 4 * units.KB,
		}
		s.Check = check
		return s
	}
	const live10k = 10_000
	// base is the arrival rate at 10k live: 0.2 flows/s per slot, the same
	// per-slot turnover the live sweep holds fixed across 1k→100k.
	const base = 2000.0
	var pts []Point
	for _, cfg := range []device.Config{device.LowEnd, device.Default} {
		for _, ccName := range []string{"cubic", "bbr"} {
			// The invariant checker (strided audits + O(1) pool
			// cross-check) arms on the Low-End cells, where CPU contention
			// makes lifecycle bugs likeliest.
			pts = append(pts, Point{
				Label: fmt.Sprintf("10k %s/%s", cfg, ccName),
				Spec:  churn(cfg, ccName, live10k, base, cfg == device.LowEnd),
			})
		}
	}
	for _, live := range []int{1_000, 100_000} {
		pts = append(pts, Point{
			Label: fmt.Sprintf("%dk Low-End/bbr", live/1000),
			Spec:  churn(device.LowEnd, "bbr", live, float64(live)/5, false),
		})
	}
	for _, mult := range []float64{0.5, 2, 8} {
		pts = append(pts, Point{
			Label: fmt.Sprintf("churn %gx 10k Low-End/bbr", mult),
			Spec:  churn(device.LowEnd, "bbr", live10k, base*mult, mult == 8),
		})
	}
	return Experiment{ID: "scale", Title: "Million-flow churn: FCT percentiles, pool reuse, flow-table fast path", Points: pts}
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		Figure2(), Figure3(), BBR2WiFi(), ModelOff(), FixedPacingRate(),
		Figure4(), Figure5(), Figure6(), Figure7(), ShallowBuffer(),
		Figure8(), Table2(), Figure9(), Memory(),
		// Extensions beyond the paper's evaluation (§7 open questions).
		FairnessVsStride(), HardwarePacing(), FiveG(), ECN(), Apps(),
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	// The scale grid resolves by id only: keeping it out of All() keeps
	// -exp all output byte-identical to before the flows data path existed.
	if id == "scale" {
		return Scale(), nil
	}
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("repro: unknown experiment %q", id)
}

// DefaultDuration is the simulated transfer time used when regenerating
// experiments (the paper runs 5 minutes; the simulation reaches steady
// state well within a few seconds).
const DefaultDuration = 4 * time.Second

// DefaultSeeds is how many seeds each point is averaged over (the paper
// averages ≥10 physical runs).
const DefaultSeeds = 3
