package netem

import (
	"testing"
	"time"

	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

func mkPkt(flow int, sq int64, n units.DataSize) *seg.Packet {
	return &seg.Packet{Flow: flow, Seq: sq, Len: n}
}

// mustPipe builds a pipe or fails the test.
func mustPipe(t *testing.T, eng *sim.Engine, cfg PipeConfig, next PacketHandler) *Pipe {
	t.Helper()
	p, err := NewPipe(eng, cfg, next)
	if err != nil {
		t.Fatalf("NewPipe: %v", err)
	}
	return p
}

// mustPath builds a path or fails the test.
func mustPath(t *testing.T, eng *sim.Engine, cfg PathConfig) *Path {
	t.Helper()
	p, err := NewPath(eng, cfg)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	return p
}

func TestPipeSerializationTiming(t *testing.T) {
	eng := sim.New(1)
	var arrivals []time.Duration
	p := mustPipe(t, eng, PipeConfig{Name: "l", Rate: 10 * units.Mbps, Delay: time.Millisecond},
		func(pkt *seg.Packet) { arrivals = append(arrivals, eng.Now()) })
	// 1250 bytes at 10Mbps = 1ms serialization.
	p.Enqueue(mkPkt(0, 0, 1250))
	p.Enqueue(mkPkt(0, 1250, 1250))
	eng.Run(time.Second)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arrivals))
	}
	if arrivals[0] != 2*time.Millisecond { // 1ms tx + 1ms prop
		t.Errorf("first arrival at %v, want 2ms", arrivals[0])
	}
	if arrivals[1] != 3*time.Millisecond { // serialized behind the first
		t.Errorf("second arrival at %v, want 3ms", arrivals[1])
	}
}

func TestPipeDropTail(t *testing.T) {
	eng := sim.New(1)
	delivered := 0
	p := mustPipe(t, eng, PipeConfig{Name: "l", Rate: units.Mbps, QueuePackets: 5},
		func(pkt *seg.Packet) { delivered++ })
	accepted := 0
	for i := 0; i < 20; i++ {
		if p.Enqueue(mkPkt(0, int64(i)*1000, 1000)) {
			accepted++
		}
	}
	// One packet is in service, 5 fit the queue.
	if accepted != 6 {
		t.Fatalf("accepted = %d, want 6 (1 in service + 5 queued)", accepted)
	}
	st := p.Stats()
	if st.DropsQueue != 14 {
		t.Errorf("queue drops = %d, want 14", st.DropsQueue)
	}
	eng.Run(time.Minute)
	if delivered != 6 {
		t.Errorf("delivered = %d, want 6", delivered)
	}
}

func TestPipeRandomLossDeterministic(t *testing.T) {
	run := func() uint64 {
		eng := sim.New(99)
		p := mustPipe(t, eng, PipeConfig{Name: "l", Rate: units.Gbps, LossRate: 0.3, QueuePackets: 10000},
			func(pkt *seg.Packet) {})
		for i := 0; i < 1000; i++ {
			p.Enqueue(mkPkt(0, int64(i)*1000, 1000))
		}
		return p.Stats().DropsRand
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("loss not deterministic across same-seed runs: %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Errorf("drops = %d out of 1000 at 30%% loss, want ~300", a)
	}
}

func TestPipeFIFOOrder(t *testing.T) {
	eng := sim.New(1)
	var seqs []int64
	p := mustPipe(t, eng, PipeConfig{Name: "l", Rate: units.Gbps},
		func(pkt *seg.Packet) { seqs = append(seqs, pkt.Seq) })
	for i := int64(0); i < 50; i++ {
		p.Enqueue(mkPkt(0, i, 100))
	}
	eng.Run(time.Second)
	for i := range seqs {
		if seqs[i] != int64(i) {
			t.Fatalf("out-of-order delivery: %v", seqs)
		}
	}
}

func TestPathEndToEnd(t *testing.T) {
	eng := sim.New(1)
	path := mustPath(t, eng, PathConfig{
		Hops: []PipeConfig{
			{Name: "a", Rate: units.Gbps, Delay: time.Millisecond},
			{Name: "b", Rate: units.Gbps, Delay: 2 * time.Millisecond},
		},
		AckDelay: 500 * time.Microsecond,
	})
	var got *seg.Packet
	var at time.Duration
	path.SetReceiver(func(pkt *seg.Packet) { got, at = pkt, eng.Now() })
	pkt := mkPkt(3, 100, seg.MSS)
	if !path.Send(pkt) {
		t.Fatal("send refused")
	}
	eng.Run(time.Second)
	if got == nil || got.Flow != 3 || got.Seq != 100 {
		t.Fatalf("wrong packet delivered: %+v", got)
	}
	// Two serializations of MSS at 1Gbps (~11.68µs each) + 3ms propagation.
	txOne := units.Gbps.TimeToSend(seg.MSS)
	want := 2*txOne + 3*time.Millisecond
	if at != want {
		t.Errorf("arrival at %v, want %v", at, want)
	}
	// Ack return.
	var ackAt time.Duration
	path.ReturnAck(&seg.Ack{Flow: 3}, func(a *seg.Ack) { ackAt = eng.Now() })
	eng.Run(2 * time.Second)
	if want := at + 500*time.Microsecond; ackAt == 0 || ackAt < want {
		t.Errorf("ack at %v, want >= %v", ackAt, want)
	}
}

func TestPathInterHopDropCounted(t *testing.T) {
	eng := sim.New(1)
	path := mustPath(t, eng, PathConfig{
		Hops: []PipeConfig{
			{Name: "fast", Rate: units.Gbps, QueuePackets: 1000},
			{Name: "slow", Rate: units.Mbps, QueuePackets: 2},
		},
	})
	path.SetReceiver(func(pkt *seg.Packet) {})
	for i := int64(0); i < 100; i++ {
		path.Send(mkPkt(0, i*1460, seg.MSS))
	}
	eng.Run(10 * time.Second)
	if path.TotalDrops() == 0 {
		t.Error("expected drops at the slow second hop")
	}
	st := path.Stats()
	if st[1].DropsQueue == 0 {
		t.Error("second hop should report queue drops")
	}
}

func TestPathMinRTT(t *testing.T) {
	eng := sim.New(1)
	path, err := EthernetLAN(eng, TC{})
	if err != nil {
		t.Fatal(err)
	}
	rtt := path.MinRTT()
	if rtt <= 0 || rtt > 2*time.Millisecond {
		t.Errorf("Ethernet LAN base RTT = %v, want sub-2ms", rtt)
	}
}

func TestEthernetPresetTCOverrides(t *testing.T) {
	eng := sim.New(1)
	path, err := EthernetLAN(eng, TC{Rate: 600 * units.Mbps, QueuePackets: 10, Loss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	router := path.Hop(1)
	if router.Rate() != 600*units.Mbps {
		t.Errorf("router rate = %v, want 600Mbps", router.Rate())
	}
	if router.Config().QueuePackets != 10 {
		t.Errorf("router queue = %d, want 10", router.Config().QueuePackets)
	}
	if router.Config().LossRate != 0.01 {
		t.Errorf("router loss = %v, want 0.01", router.Config().LossRate)
	}
}

func TestCellularPresetIsBandwidthLimited(t *testing.T) {
	eng := sim.New(1)
	path, err := CellularLTE(eng, TC{})
	if err != nil {
		t.Fatal(err)
	}
	if r := path.Hop(0).Rate(); r > 25*units.Mbps {
		t.Errorf("LTE uplink rate = %v, want <= 25Mbps (bandwidth-limited)", r)
	}
	if path.MinRTT() < 30*time.Millisecond {
		t.Errorf("LTE RTT = %v, want tens of ms", path.MinRTT())
	}
}

func TestWiFiModulatorVariesRate(t *testing.T) {
	eng := sim.New(7)
	path, mod, err := WiFiLAN(eng, TC{})
	if err != nil {
		t.Fatal(err)
	}
	air := path.Hop(0)
	base := air.Rate()
	mod.Start()
	seen := map[units.Bandwidth]bool{}
	for i := 0; i < 50; i++ {
		eng.Run(eng.Now() + 20*time.Millisecond)
		seen[air.Rate()] = true
		r := air.Rate()
		if r < units.Bandwidth(float64(base)*0.55) || r > units.Bandwidth(float64(base)*1.10) {
			t.Fatalf("rate %v outside clamp around base %v", r, base)
		}
	}
	if len(seen) < 10 {
		t.Errorf("rate barely varies: %d distinct values", len(seen))
	}
}

func TestWiFiModulatorStartIdempotent(t *testing.T) {
	eng := sim.New(7)
	_, mod, err := WiFiLAN(eng, TC{})
	if err != nil {
		t.Fatal(err)
	}
	mod.Start()
	mod.Start()
	before := eng.Pending()
	eng.Run(100 * time.Millisecond)
	// A double-start would double the tick chain; pending events should
	// stay constant (one tick outstanding).
	if after := eng.Pending(); after > before {
		t.Errorf("pending events grew from %d to %d: double tick chain", before, after)
	}
}

func TestPipeConfigErrors(t *testing.T) {
	eng := sim.New(1)
	sink := func(*seg.Packet) {}
	cases := []struct {
		name string
		cfg  PipeConfig
	}{
		{"zero rate", PipeConfig{}},
		{"negative delay", PipeConfig{Rate: units.Gbps, Delay: -time.Second}},
		{"loss above one", PipeConfig{Rate: units.Gbps, LossRate: 1.5}},
		{"negative queue", PipeConfig{Rate: units.Gbps, QueuePackets: -1}},
		{"bad GE", PipeConfig{Rate: units.Gbps, GE: &GEConfig{PGoodToBad: 2}}},
	}
	for _, c := range cases {
		if _, err := NewPipe(eng, c.cfg, sink); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewPath(eng, PathConfig{}); err == nil {
		t.Error("empty path: expected error")
	}
	if _, err := NewPath(eng, PathConfig{Hops: []PipeConfig{{Rate: units.Gbps}}, AckDelay: -1}); err == nil {
		t.Error("negative ack delay: expected error")
	}
	// A nil downstream handler is a programmer error and still panics.
	defer func() {
		if recover() == nil {
			t.Error("nil next: expected panic")
		}
	}()
	NewPipe(eng, PipeConfig{Rate: units.Gbps}, nil)
}

func TestTCValidate(t *testing.T) {
	if err := (TC{Rate: 600 * units.Mbps, Loss: 0.01}).Validate(); err != nil {
		t.Errorf("valid TC rejected: %v", err)
	}
	bad := []TC{
		{Loss: -0.1}, {Loss: 1.01}, {Delay: -time.Second},
		{QueuePackets: -2}, {ECNThreshold: -1}, {ReorderJitter: -time.Millisecond},
	}
	for i, tc := range bad {
		if err := tc.Validate(); err == nil {
			t.Errorf("bad TC %d accepted", i)
		}
	}
	if _, err := EthernetLAN(sim.New(1), TC{Loss: 2}); err == nil {
		t.Error("preset accepted invalid TC")
	}
}

func TestPipePauseResume(t *testing.T) {
	eng := sim.New(1)
	delivered := 0
	p := mustPipe(t, eng, PipeConfig{Name: "l", Rate: units.Gbps, QueuePackets: 4},
		func(pkt *seg.Packet) { delivered++ })
	p.Pause()
	accepted := 0
	for i := 0; i < 10; i++ {
		if p.Enqueue(mkPkt(0, int64(i)*1000, 1000)) {
			accepted++
		}
	}
	eng.Run(100 * time.Millisecond)
	if delivered != 0 {
		t.Fatalf("delivered %d during blackout, want 0", delivered)
	}
	// Queue holds 4, the rest tail-drop: exactly the blackout behaviour.
	if accepted != 4 {
		t.Errorf("accepted = %d, want 4 (queue cap)", accepted)
	}
	if p.Stats().DropsQueue != 6 {
		t.Errorf("queue drops = %d, want 6", p.Stats().DropsQueue)
	}
	p.Resume()
	eng.Run(200 * time.Millisecond)
	if delivered != 4 {
		t.Errorf("delivered = %d after resume, want 4", delivered)
	}
	// Double-resume must not double-serve.
	p.Resume()
	eng.Run(300 * time.Millisecond)
	if delivered != 4 {
		t.Errorf("delivered = %d after second resume, want 4", delivered)
	}
}

func TestPipeSetDelayAndLoss(t *testing.T) {
	eng := sim.New(1)
	var at time.Duration
	p := mustPipe(t, eng, PipeConfig{Name: "l", Rate: 10 * units.Mbps, Delay: time.Millisecond},
		func(pkt *seg.Packet) { at = eng.Now() })
	if err := p.SetDelay(5 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	p.Enqueue(mkPkt(0, 0, 1250)) // 1ms serialization
	eng.Run(time.Second)
	if at != 6*time.Millisecond {
		t.Errorf("arrival at %v, want 6ms (1ms tx + 5ms new delay)", at)
	}
	if err := p.SetDelay(-1); err == nil {
		t.Error("negative SetDelay accepted")
	}
	if err := p.SetLoss(1.5); err == nil {
		t.Error("SetLoss 1.5 accepted")
	}
	if err := p.SetLoss(1); err != nil {
		t.Fatal(err)
	}
	if p.Enqueue(mkPkt(0, 1250, 1250)) {
		t.Error("packet accepted at 100% loss")
	}
}

func TestGilbertElliottBurstLoss(t *testing.T) {
	eng := sim.New(5)
	delivered := 0
	p := mustPipe(t, eng, PipeConfig{
		Name: "l", Rate: units.Gbps, QueuePackets: 100000,
		GE: &GEConfig{PGoodToBad: 0.02, PBadToGood: 0.1, LossGood: 0, LossBad: 1},
	}, func(pkt *seg.Packet) { delivered++ })
	drops, runs, inRun := 0, 0, false
	for i := 0; i < 5000; i++ {
		if p.Enqueue(mkPkt(0, int64(i)*100, 100)) {
			inRun = false
		} else {
			drops++
			if !inRun {
				runs++
				inRun = true
			}
		}
	}
	if drops == 0 {
		t.Fatal("GE model produced no loss")
	}
	// Bursty: mean run length 1/PBadToGood = 10 ≫ 1, so far fewer runs
	// than drops.
	if runs*3 > drops {
		t.Errorf("loss not bursty: %d drops in %d runs", drops, runs)
	}
	if got := p.Stats().DropsRand; got != uint64(drops) {
		t.Errorf("DropsRand = %d, want %d", got, drops)
	}
	// Disabling restores lossless entry.
	if err := p.SetGE(nil); err != nil {
		t.Fatal(err)
	}
	if !p.Enqueue(mkPkt(0, 0, 100)) {
		t.Error("drop after disabling GE")
	}
}

func TestECNMarkingAtThreshold(t *testing.T) {
	eng := sim.New(1)
	var ce, total int
	p := mustPipe(t, eng, PipeConfig{Name: "l", Rate: units.Mbps, QueuePackets: 50, ECNThreshold: 5},
		func(pkt *seg.Packet) {
			total++
			if pkt.CE {
				ce++
			}
		})
	for i := 0; i < 20; i++ {
		p.Enqueue(mkPkt(0, int64(i)*1000, 1000))
	}
	eng.Run(time.Minute)
	if total != 20 {
		t.Fatalf("delivered %d, want 20 (no drops below queue cap)", total)
	}
	// The first packet is in service; the queue then grows 1,2,3,4,5…:
	// packets arriving at depth >= 5 are marked.
	if ce == 0 {
		t.Fatal("no CE marks despite queue beyond threshold")
	}
	if st := p.Stats(); st.CEMarked != uint64(ce) {
		t.Errorf("stats CEMarked = %d, delivered CE = %d", st.CEMarked, ce)
	}
	if p.Stats().Drops() != 0 {
		t.Error("marking should not drop below the queue cap")
	}
}

func TestECNOffNeverMarks(t *testing.T) {
	eng := sim.New(1)
	p := mustPipe(t, eng, PipeConfig{Name: "l", Rate: units.Mbps, QueuePackets: 50},
		func(pkt *seg.Packet) {
			if pkt.CE {
				t.Error("CE mark with ECN disabled")
			}
		})
	for i := 0; i < 20; i++ {
		p.Enqueue(mkPkt(0, int64(i)*1000, 1000))
	}
	eng.Run(time.Minute)
}

func TestReorderJitterReorders(t *testing.T) {
	eng := sim.New(3)
	var seqs []int64
	p := mustPipe(t, eng, PipeConfig{Name: "l", Rate: units.Gbps, ReorderJitter: time.Millisecond},
		func(pkt *seg.Packet) { seqs = append(seqs, pkt.Seq) })
	for i := int64(0); i < 200; i++ {
		p.Enqueue(mkPkt(0, i, 100))
	}
	eng.Run(time.Second)
	if len(seqs) != 200 {
		t.Fatalf("delivered %d, want 200", len(seqs))
	}
	inOrder := true
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("1ms jitter on back-to-back packets produced no reordering")
	}
}
