// Package netem emulates the testbed network: rate-limited links with
// drop-tail queues and propagation delay, assembled into paths (device NIC →
// OpenWRT router → server), plus tc-style impairments (rate caps, extra
// delay, random loss), a WiFi rate-variation model, an LTE preset, and
// mutators (rate, delay, loss, pause/resume, burst loss) that the fault-
// injection layer drives mid-run.
package netem

import (
	"fmt"
	"time"

	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// PacketHandler consumes packets at the downstream end of a pipe.
type PacketHandler func(p *seg.Packet)

// GEConfig is a Gilbert–Elliott two-state burst-loss model: the link
// alternates between a Good and a Bad state, with independent loss rates in
// each, and per-packet transition probabilities. It reproduces the bursty
// loss of a fading radio channel that i.i.d. LossRate cannot.
type GEConfig struct {
	// PGoodToBad is the per-packet probability of entering the Bad state.
	PGoodToBad float64
	// PBadToGood is the per-packet probability of returning to Good.
	PBadToGood float64
	// LossGood is the drop probability while Good (usually ~0).
	LossGood float64
	// LossBad is the drop probability while Bad (often near 1).
	LossBad float64
}

// Validate checks that all probabilities are in [0, 1].
func (g GEConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodToBad", g.PGoodToBad}, {"PBadToGood", g.PBadToGood},
		{"LossGood", g.LossGood}, {"LossBad", g.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netem: GE %s = %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// PipeConfig describes one hop: a drop-tail queue draining into a serial
// link with propagation delay, optionally with i.i.d. random loss (tc netem
// style).
type PipeConfig struct {
	// Name labels the hop in stats output.
	Name string
	// Rate is the link's serialization rate.
	Rate units.Bandwidth
	// Delay is the one-way propagation delay added after serialization.
	Delay time.Duration
	// QueuePackets is the drop-tail queue capacity in packets. Zero means
	// a default of 256 (a typical device/driver ring plus qdisc backlog).
	QueuePackets int
	// LossRate is an i.i.d. random drop probability applied on entry,
	// before queueing (tc netem loss).
	LossRate float64
	// ECNThreshold, when > 0, marks packets CE instead of building queue
	// beyond this depth (a RED/CoDel-style AQM marking step); drop-tail
	// still applies at QueuePackets.
	ECNThreshold int
	// ReorderJitter adds a uniform random extra delay in [0, ReorderJitter)
	// to each packet after serialization (tc netem delay jitter), which
	// reorders packets whose spacing is below the jitter.
	ReorderJitter time.Duration
	// GE, when non-nil, enables Gilbert–Elliott burst loss on entry in
	// place of the i.i.d. LossRate (both may be set; GE is applied first).
	GE *GEConfig
}

// Validate checks the hop's parameters.
func (cfg PipeConfig) Validate() error {
	if cfg.Rate <= 0 {
		return fmt.Errorf("netem: pipe %q needs a positive rate, got %v", cfg.Name, cfg.Rate)
	}
	if cfg.Delay < 0 {
		return fmt.Errorf("netem: pipe %q has negative delay %v", cfg.Name, cfg.Delay)
	}
	if cfg.QueuePackets < 0 {
		return fmt.Errorf("netem: pipe %q has negative queue depth %d", cfg.Name, cfg.QueuePackets)
	}
	if cfg.LossRate < 0 || cfg.LossRate > 1 {
		return fmt.Errorf("netem: pipe %q loss rate %v out of [0,1]", cfg.Name, cfg.LossRate)
	}
	if cfg.ECNThreshold < 0 {
		return fmt.Errorf("netem: pipe %q has negative ECN threshold %d", cfg.Name, cfg.ECNThreshold)
	}
	if cfg.ReorderJitter < 0 {
		return fmt.Errorf("netem: pipe %q has negative reorder jitter %v", cfg.Name, cfg.ReorderJitter)
	}
	if cfg.GE != nil {
		if err := cfg.GE.Validate(); err != nil {
			return fmt.Errorf("pipe %q: %w", cfg.Name, err)
		}
	}
	return nil
}

// Pipe is a single emulated hop. Packets are enqueued, serialized at Rate in
// FIFO order, delayed by Delay, and handed to the downstream handler.
// Packets arriving to a full queue are dropped (drop-tail).
type Pipe struct {
	eng  *sim.Engine
	cfg  PipeConfig
	next PacketHandler
	pool *seg.Pool // nil outside a pooled run; drops then just unreference

	// The drop-tail queue is a fixed ring sized to QueuePackets, so
	// steady-state enqueue/dequeue never reallocates.
	q     []*seg.Packet
	qhead int
	qlen  int

	txPkt  *seg.Packet // packet mid-serialization, nil when the link is idle
	paused bool
	geBad  bool // Gilbert–Elliott state: currently Bad
	// hold tracks packets past serialization, in propagation flight: they
	// are owned by pending deliver events, and the hold list is what makes
	// them reachable for the run-end reclaim.
	hold seg.PacketList

	// txDoneFn/deliverFn are the serialization-complete and propagation-
	// complete callbacks, allocated once and carried through ScheduleP so
	// the per-packet hot path schedules without closures.
	txDoneFn  func(any)
	deliverFn func(any)

	// remote, when set, replaces local propagation: packets leaving
	// serialization are handed to it with their assigned propagation delay
	// (base + jitter) instead of being held and scheduled here. The sharded
	// path uses it to carry the last hop across a shard boundary.
	remote func(pkt *seg.Packet, delay time.Duration)

	// Stats.
	enqueued   uint64
	dropsQueue uint64
	dropsRand  uint64
	delivered  uint64
	ceMarked   uint64
	bytesOut   units.DataSize
}

// NewPipe returns a pipe on eng delivering to next. It rejects invalid
// configurations with an error; a nil downstream handler is a programmer
// error and panics.
func NewPipe(eng *sim.Engine, cfg PipeConfig, next PacketHandler) (*Pipe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.QueuePackets == 0 {
		cfg.QueuePackets = 256
	}
	if next == nil {
		panic("netem: pipe needs a downstream handler")
	}
	p := &Pipe{eng: eng, cfg: cfg, next: next, q: make([]*seg.Packet, cfg.QueuePackets)}
	p.txDoneFn = func(v any) { p.txDone(v.(*seg.Packet)) }
	p.deliverFn = func(v any) { p.deliver(v.(*seg.Packet)) }
	return p, nil
}

// SetPool attaches the run's packet pool: packets the pipe drops (loss
// injection, full queue) are released back to it at the drop point.
func (p *Pipe) SetPool(pool *seg.Pool) { p.pool = pool }

// SetRemote diverts post-serialization delivery to fn: custody of each
// packet transfers to fn together with its propagation delay, and the
// pipe's own hold/deliver machinery is bypassed. Used to carry a hop's
// propagation leg across a shard boundary.
func (p *Pipe) SetRemote(fn func(pkt *seg.Packet, delay time.Duration)) { p.remote = fn }

// SetRate changes the link rate for packets serialized from now on. The
// WiFi model uses this to emulate rate adaptation. Non-positive rates are a
// programmer error (use Pause for an outage) and panic.
func (p *Pipe) SetRate(r units.Bandwidth) {
	if r <= 0 {
		panic("netem: SetRate needs a positive rate (use Pause for an outage)")
	}
	p.cfg.Rate = r
}

// Rate returns the current link rate.
func (p *Pipe) Rate() units.Bandwidth { return p.cfg.Rate }

// SetDelay changes the one-way propagation delay for packets completing
// serialization from now on. Packets already past serialization keep the
// delay they were assigned.
func (p *Pipe) SetDelay(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("netem: SetDelay with negative delay %v", d)
	}
	p.cfg.Delay = d
	return nil
}

// Delay returns the current one-way propagation delay.
func (p *Pipe) Delay() time.Duration { return p.cfg.Delay }

// SetLoss changes the i.i.d. random loss probability applied on entry.
func (p *Pipe) SetLoss(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("netem: SetLoss rate %v out of [0,1]", rate)
	}
	p.cfg.LossRate = rate
	return nil
}

// SetGE installs (or, with nil, removes) a Gilbert–Elliott burst-loss model
// on the hop. The state machine starts in Good.
func (p *Pipe) SetGE(g *GEConfig) error {
	if g != nil {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	p.cfg.GE = g
	p.geBad = false
	return nil
}

// Pause halts the drain loop: nothing serializes until Resume, so the queue
// builds and eventually tail-drops — a radio blackout. A packet already
// mid-serialization completes. Pausing twice is a no-op.
func (p *Pipe) Pause() { p.paused = true }

// Resume restarts the drain loop after Pause, serving whatever queued
// during the outage.
func (p *Pipe) Resume() {
	if !p.paused {
		return
	}
	p.paused = false
	if p.txPkt == nil {
		p.serveNext()
	}
}

// Paused reports whether the drain loop is paused.
func (p *Pipe) Paused() bool { return p.paused }

// Config returns the pipe's configuration.
func (p *Pipe) Config() PipeConfig { return p.cfg }

// geDrop advances the Gilbert–Elliott state machine by one packet and
// reports whether that packet is dropped.
func (p *Pipe) geDrop() bool {
	g := p.cfg.GE
	rng := p.eng.Rand()
	if p.geBad {
		if rng.Float64() < g.PBadToGood {
			p.geBad = false
		}
	} else {
		if rng.Float64() < g.PGoodToBad {
			p.geBad = true
		}
	}
	loss := g.LossGood
	if p.geBad {
		loss = g.LossBad
	}
	return loss > 0 && rng.Float64() < loss
}

// Enqueue offers a packet to the hop. It reports whether the packet was
// accepted. On false the packet was dropped (loss injection or full queue)
// and — the drop being one of the pool's sink points — released back to the
// run's pool; the caller must not touch it again.
func (p *Pipe) Enqueue(pkt *seg.Packet) bool {
	if p.cfg.GE != nil && p.geDrop() {
		p.dropsRand++
		p.pool.PutPacket(pkt)
		return false
	}
	if p.cfg.LossRate > 0 && p.eng.Rand().Float64() < p.cfg.LossRate {
		p.dropsRand++
		p.pool.PutPacket(pkt)
		return false
	}
	if p.qlen >= p.cfg.QueuePackets {
		p.dropsQueue++
		p.pool.PutPacket(pkt)
		return false
	}
	p.enqueued++
	if p.cfg.ECNThreshold > 0 && p.qlen >= p.cfg.ECNThreshold {
		pkt.CE = true
		p.ceMarked++
	}
	p.q[(p.qhead+p.qlen)%len(p.q)] = pkt
	p.qlen++
	if p.txPkt == nil && !p.paused {
		p.serveNext()
	}
	return true
}

func (p *Pipe) serveNext() {
	if p.qlen == 0 || p.paused {
		return
	}
	pkt := p.q[p.qhead]
	p.q[p.qhead] = nil
	p.qhead = (p.qhead + 1) % len(p.q)
	p.qlen--
	p.txPkt = pkt
	p.eng.ScheduleP(p.cfg.Rate.TimeToSend(pkt.Len), p.txDoneFn, pkt)
}

// txDone fires when pkt's last bit leaves the link: hand it to propagation
// (or straight downstream) and start serializing the next queued packet.
func (p *Pipe) txDone(pkt *seg.Packet) {
	p.txPkt = nil
	p.delivered++
	p.bytesOut += pkt.Len
	delay := p.cfg.Delay
	if p.cfg.ReorderJitter > 0 {
		delay += time.Duration(p.eng.Rand().Int63n(int64(p.cfg.ReorderJitter)))
	}
	if p.remote != nil {
		p.remote(pkt, delay)
	} else if delay > 0 {
		p.hold.Push(pkt)
		p.eng.ScheduleP(delay, p.deliverFn, pkt)
	} else {
		p.next(pkt)
	}
	p.serveNext()
}

// deliver fires when pkt's propagation delay elapses.
func (p *Pipe) deliver(pkt *seg.Packet) {
	p.hold.Remove(pkt)
	p.next(pkt)
}

// Reclaim releases every packet the pipe still holds — ring queue,
// mid-serialization slot, propagation flight — back to the pool. The run
// harness calls it after the engine stops (pending deliver events never
// fire past the run horizon, so these packets would otherwise count as
// leaked).
func (p *Pipe) Reclaim() {
	for p.qlen > 0 {
		pkt := p.q[p.qhead]
		p.q[p.qhead] = nil
		p.qhead = (p.qhead + 1) % len(p.q)
		p.qlen--
		p.pool.PutPacket(pkt)
	}
	if p.txPkt != nil {
		p.pool.PutPacket(p.txPkt)
		p.txPkt = nil
	}
	p.hold.Drain(p.pool.PutPacket)
}

// QueueLen returns the instantaneous queue depth in packets (not counting
// the packet being serialized).
func (p *Pipe) QueueLen() int { return p.qlen }

// InTransit returns the packets the hop currently holds: queued, mid-
// serialization, and in propagation-delay flight — the invariant checker's
// view of where in-network packets are.
func (p *Pipe) InTransit() int {
	n := p.qlen + p.hold.Len()
	if p.txPkt != nil {
		n++
	}
	return n
}

// Stats returns the pipe's counters.
func (p *Pipe) Stats() PipeStats {
	return PipeStats{
		Name:       p.cfg.Name,
		Enqueued:   p.enqueued,
		Delivered:  p.delivered,
		DropsQueue: p.dropsQueue,
		DropsRand:  p.dropsRand,
		CEMarked:   p.ceMarked,
		BytesOut:   p.bytesOut,
	}
}

// PipeStats is a snapshot of a pipe's packet counters.
type PipeStats struct {
	Name       string
	Enqueued   uint64
	Delivered  uint64
	DropsQueue uint64
	DropsRand  uint64
	CEMarked   uint64
	BytesOut   units.DataSize
}

// Drops returns total drops from all causes.
func (s PipeStats) Drops() uint64 { return s.DropsQueue + s.DropsRand }
