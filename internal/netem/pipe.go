// Package netem emulates the testbed network: rate-limited links with
// drop-tail queues and propagation delay, assembled into paths (device NIC →
// OpenWRT router → server), plus tc-style impairments (rate caps, extra
// delay, random loss), a WiFi rate-variation model and an LTE preset.
package netem

import (
	"fmt"
	"time"

	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// PacketHandler consumes packets at the downstream end of a pipe.
type PacketHandler func(p *seg.Packet)

// PipeConfig describes one hop: a drop-tail queue draining into a serial
// link with propagation delay, optionally with i.i.d. random loss (tc netem
// style).
type PipeConfig struct {
	// Name labels the hop in stats output.
	Name string
	// Rate is the link's serialization rate.
	Rate units.Bandwidth
	// Delay is the one-way propagation delay added after serialization.
	Delay time.Duration
	// QueuePackets is the drop-tail queue capacity in packets. Zero means
	// a default of 256 (a typical device/driver ring plus qdisc backlog).
	QueuePackets int
	// LossRate is an i.i.d. random drop probability applied on entry,
	// before queueing (tc netem loss).
	LossRate float64
	// ECNThreshold, when > 0, marks packets CE instead of building queue
	// beyond this depth (a RED/CoDel-style AQM marking step); drop-tail
	// still applies at QueuePackets.
	ECNThreshold int
	// ReorderJitter adds a uniform random extra delay in [0, ReorderJitter)
	// to each packet after serialization (tc netem delay jitter), which
	// reorders packets whose spacing is below the jitter.
	ReorderJitter time.Duration
}

// Pipe is a single emulated hop. Packets are enqueued, serialized at Rate in
// FIFO order, delayed by Delay, and handed to the downstream handler.
// Packets arriving to a full queue are dropped (drop-tail).
type Pipe struct {
	eng  *sim.Engine
	cfg  PipeConfig
	next PacketHandler

	queue   []*seg.Packet
	sending bool

	// Stats.
	enqueued   uint64
	dropsQueue uint64
	dropsRand  uint64
	delivered  uint64
	ceMarked   uint64
	bytesOut   units.DataSize
}

// NewPipe returns a pipe on eng delivering to next.
func NewPipe(eng *sim.Engine, cfg PipeConfig, next PacketHandler) *Pipe {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("netem: pipe %q needs a positive rate", cfg.Name))
	}
	if cfg.QueuePackets == 0 {
		cfg.QueuePackets = 256
	}
	if next == nil {
		panic("netem: pipe needs a downstream handler")
	}
	return &Pipe{eng: eng, cfg: cfg, next: next}
}

// SetRate changes the link rate for packets serialized from now on. The
// WiFi model uses this to emulate rate adaptation.
func (p *Pipe) SetRate(r units.Bandwidth) {
	if r <= 0 {
		panic("netem: SetRate needs a positive rate")
	}
	p.cfg.Rate = r
}

// Rate returns the current link rate.
func (p *Pipe) Rate() units.Bandwidth { return p.cfg.Rate }

// Config returns the pipe's configuration.
func (p *Pipe) Config() PipeConfig { return p.cfg }

// Enqueue offers a packet to the hop. It reports whether the packet was
// accepted (false means dropped by loss injection or a full queue).
func (p *Pipe) Enqueue(pkt *seg.Packet) bool {
	if p.cfg.LossRate > 0 && p.eng.Rand().Float64() < p.cfg.LossRate {
		p.dropsRand++
		return false
	}
	if len(p.queue) >= p.cfg.QueuePackets {
		p.dropsQueue++
		return false
	}
	p.enqueued++
	if p.cfg.ECNThreshold > 0 && len(p.queue) >= p.cfg.ECNThreshold {
		pkt.CE = true
		p.ceMarked++
	}
	p.queue = append(p.queue, pkt)
	if !p.sending {
		p.serveNext()
	}
	return true
}

func (p *Pipe) serveNext() {
	if len(p.queue) == 0 {
		p.sending = false
		return
	}
	p.sending = true
	pkt := p.queue[0]
	p.queue = p.queue[1:]
	txTime := p.cfg.Rate.TimeToSend(pkt.Len)
	p.eng.Schedule(txTime, func() {
		p.delivered++
		p.bytesOut += pkt.Len
		delay := p.cfg.Delay
		if p.cfg.ReorderJitter > 0 {
			delay += time.Duration(p.eng.Rand().Int63n(int64(p.cfg.ReorderJitter)))
		}
		if delay > 0 {
			p.eng.Schedule(delay, func() { p.next(pkt) })
		} else {
			p.next(pkt)
		}
		p.serveNext()
	})
}

// QueueLen returns the instantaneous queue depth in packets (not counting
// the packet being serialized).
func (p *Pipe) QueueLen() int { return len(p.queue) }

// Stats returns the pipe's counters.
func (p *Pipe) Stats() PipeStats {
	return PipeStats{
		Name:       p.cfg.Name,
		Enqueued:   p.enqueued,
		Delivered:  p.delivered,
		DropsQueue: p.dropsQueue,
		DropsRand:  p.dropsRand,
		CEMarked:   p.ceMarked,
		BytesOut:   p.bytesOut,
	}
}

// PipeStats is a snapshot of a pipe's packet counters.
type PipeStats struct {
	Name       string
	Enqueued   uint64
	Delivered  uint64
	DropsQueue uint64
	DropsRand  uint64
	CEMarked   uint64
	BytesOut   units.DataSize
}

// Drops returns total drops from all causes.
func (s PipeStats) Drops() uint64 { return s.DropsQueue + s.DropsRand }
