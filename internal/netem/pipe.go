// Package netem emulates the testbed network: rate-limited links with
// drop-tail queues and propagation delay, assembled into paths (device NIC →
// OpenWRT router → server), plus tc-style impairments (rate caps, extra
// delay, random loss), a WiFi rate-variation model, an LTE preset, and
// mutators (rate, delay, loss, pause/resume, burst loss) that the fault-
// injection layer drives mid-run.
package netem

import (
	"fmt"
	"time"

	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// PacketHandler consumes packets at the downstream end of a pipe.
type PacketHandler func(p *seg.Packet)

// GEConfig is a Gilbert–Elliott two-state burst-loss model: the link
// alternates between a Good and a Bad state, with independent loss rates in
// each, and per-packet transition probabilities. It reproduces the bursty
// loss of a fading radio channel that i.i.d. LossRate cannot.
type GEConfig struct {
	// PGoodToBad is the per-packet probability of entering the Bad state.
	PGoodToBad float64
	// PBadToGood is the per-packet probability of returning to Good.
	PBadToGood float64
	// LossGood is the drop probability while Good (usually ~0).
	LossGood float64
	// LossBad is the drop probability while Bad (often near 1).
	LossBad float64
}

// Validate checks that all probabilities are in [0, 1].
func (g GEConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodToBad", g.PGoodToBad}, {"PBadToGood", g.PBadToGood},
		{"LossGood", g.LossGood}, {"LossBad", g.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netem: GE %s = %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// PipeConfig describes one hop: a drop-tail queue draining into a serial
// link with propagation delay, optionally with i.i.d. random loss (tc netem
// style).
type PipeConfig struct {
	// Name labels the hop in stats output.
	Name string
	// Rate is the link's serialization rate.
	Rate units.Bandwidth
	// Delay is the one-way propagation delay added after serialization.
	Delay time.Duration
	// QueuePackets is the drop-tail queue capacity in packets. Zero means
	// a default of 256 (a typical device/driver ring plus qdisc backlog).
	QueuePackets int
	// LossRate is an i.i.d. random drop probability applied on entry,
	// before queueing (tc netem loss).
	LossRate float64
	// ECNThreshold, when > 0, marks packets CE instead of building queue
	// beyond this depth (a RED/CoDel-style AQM marking step); drop-tail
	// still applies at QueuePackets.
	ECNThreshold int
	// ReorderJitter adds a uniform random extra delay in [0, ReorderJitter)
	// to each packet after serialization (tc netem delay jitter), which
	// reorders packets whose spacing is below the jitter.
	ReorderJitter time.Duration
	// GE, when non-nil, enables Gilbert–Elliott burst loss on entry in
	// place of the i.i.d. LossRate (both may be set; GE is applied first).
	GE *GEConfig
}

// Validate checks the hop's parameters.
func (cfg PipeConfig) Validate() error {
	if cfg.Rate <= 0 {
		return fmt.Errorf("netem: pipe %q needs a positive rate, got %v", cfg.Name, cfg.Rate)
	}
	if cfg.Delay < 0 {
		return fmt.Errorf("netem: pipe %q has negative delay %v", cfg.Name, cfg.Delay)
	}
	if cfg.QueuePackets < 0 {
		return fmt.Errorf("netem: pipe %q has negative queue depth %d", cfg.Name, cfg.QueuePackets)
	}
	if cfg.LossRate < 0 || cfg.LossRate > 1 {
		return fmt.Errorf("netem: pipe %q loss rate %v out of [0,1]", cfg.Name, cfg.LossRate)
	}
	if cfg.ECNThreshold < 0 {
		return fmt.Errorf("netem: pipe %q has negative ECN threshold %d", cfg.Name, cfg.ECNThreshold)
	}
	if cfg.ReorderJitter < 0 {
		return fmt.Errorf("netem: pipe %q has negative reorder jitter %v", cfg.Name, cfg.ReorderJitter)
	}
	if cfg.GE != nil {
		if err := cfg.GE.Validate(); err != nil {
			return fmt.Errorf("pipe %q: %w", cfg.Name, err)
		}
	}
	return nil
}

// Pipe is a single emulated hop. Packets are enqueued, serialized at Rate in
// FIFO order, delayed by Delay, and handed to the downstream handler.
// Packets arriving to a full queue are dropped (drop-tail).
type Pipe struct {
	eng  *sim.Engine
	cfg  PipeConfig
	next PacketHandler

	queue   []*seg.Packet
	sending bool
	paused  bool
	geBad   bool // Gilbert–Elliott state: currently Bad
	inDelay int  // packets past serialization, in propagation flight

	// Stats.
	enqueued   uint64
	dropsQueue uint64
	dropsRand  uint64
	delivered  uint64
	ceMarked   uint64
	bytesOut   units.DataSize
}

// NewPipe returns a pipe on eng delivering to next. It rejects invalid
// configurations with an error; a nil downstream handler is a programmer
// error and panics.
func NewPipe(eng *sim.Engine, cfg PipeConfig, next PacketHandler) (*Pipe, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.QueuePackets == 0 {
		cfg.QueuePackets = 256
	}
	if next == nil {
		panic("netem: pipe needs a downstream handler")
	}
	return &Pipe{eng: eng, cfg: cfg, next: next}, nil
}

// SetRate changes the link rate for packets serialized from now on. The
// WiFi model uses this to emulate rate adaptation. Non-positive rates are a
// programmer error (use Pause for an outage) and panic.
func (p *Pipe) SetRate(r units.Bandwidth) {
	if r <= 0 {
		panic("netem: SetRate needs a positive rate (use Pause for an outage)")
	}
	p.cfg.Rate = r
}

// Rate returns the current link rate.
func (p *Pipe) Rate() units.Bandwidth { return p.cfg.Rate }

// SetDelay changes the one-way propagation delay for packets completing
// serialization from now on. Packets already past serialization keep the
// delay they were assigned.
func (p *Pipe) SetDelay(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("netem: SetDelay with negative delay %v", d)
	}
	p.cfg.Delay = d
	return nil
}

// Delay returns the current one-way propagation delay.
func (p *Pipe) Delay() time.Duration { return p.cfg.Delay }

// SetLoss changes the i.i.d. random loss probability applied on entry.
func (p *Pipe) SetLoss(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("netem: SetLoss rate %v out of [0,1]", rate)
	}
	p.cfg.LossRate = rate
	return nil
}

// SetGE installs (or, with nil, removes) a Gilbert–Elliott burst-loss model
// on the hop. The state machine starts in Good.
func (p *Pipe) SetGE(g *GEConfig) error {
	if g != nil {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	p.cfg.GE = g
	p.geBad = false
	return nil
}

// Pause halts the drain loop: nothing serializes until Resume, so the queue
// builds and eventually tail-drops — a radio blackout. A packet already
// mid-serialization completes. Pausing twice is a no-op.
func (p *Pipe) Pause() { p.paused = true }

// Resume restarts the drain loop after Pause, serving whatever queued
// during the outage.
func (p *Pipe) Resume() {
	if !p.paused {
		return
	}
	p.paused = false
	if !p.sending {
		p.serveNext()
	}
}

// Paused reports whether the drain loop is paused.
func (p *Pipe) Paused() bool { return p.paused }

// Config returns the pipe's configuration.
func (p *Pipe) Config() PipeConfig { return p.cfg }

// geDrop advances the Gilbert–Elliott state machine by one packet and
// reports whether that packet is dropped.
func (p *Pipe) geDrop() bool {
	g := p.cfg.GE
	rng := p.eng.Rand()
	if p.geBad {
		if rng.Float64() < g.PBadToGood {
			p.geBad = false
		}
	} else {
		if rng.Float64() < g.PGoodToBad {
			p.geBad = true
		}
	}
	loss := g.LossGood
	if p.geBad {
		loss = g.LossBad
	}
	return loss > 0 && rng.Float64() < loss
}

// Enqueue offers a packet to the hop. It reports whether the packet was
// accepted (false means dropped by loss injection or a full queue).
func (p *Pipe) Enqueue(pkt *seg.Packet) bool {
	if p.cfg.GE != nil && p.geDrop() {
		p.dropsRand++
		return false
	}
	if p.cfg.LossRate > 0 && p.eng.Rand().Float64() < p.cfg.LossRate {
		p.dropsRand++
		return false
	}
	if len(p.queue) >= p.cfg.QueuePackets {
		p.dropsQueue++
		return false
	}
	p.enqueued++
	if p.cfg.ECNThreshold > 0 && len(p.queue) >= p.cfg.ECNThreshold {
		pkt.CE = true
		p.ceMarked++
	}
	p.queue = append(p.queue, pkt)
	if !p.sending && !p.paused {
		p.serveNext()
	}
	return true
}

func (p *Pipe) serveNext() {
	if len(p.queue) == 0 || p.paused {
		p.sending = false
		return
	}
	p.sending = true
	pkt := p.queue[0]
	p.queue = p.queue[1:]
	txTime := p.cfg.Rate.TimeToSend(pkt.Len)
	p.eng.Schedule(txTime, func() {
		p.delivered++
		p.bytesOut += pkt.Len
		delay := p.cfg.Delay
		if p.cfg.ReorderJitter > 0 {
			delay += time.Duration(p.eng.Rand().Int63n(int64(p.cfg.ReorderJitter)))
		}
		if delay > 0 {
			p.inDelay++
			p.eng.Schedule(delay, func() { p.inDelay--; p.next(pkt) })
		} else {
			p.next(pkt)
		}
		p.serveNext()
	})
}

// QueueLen returns the instantaneous queue depth in packets (not counting
// the packet being serialized).
func (p *Pipe) QueueLen() int { return len(p.queue) }

// InTransit returns the packets the hop currently holds: queued, mid-
// serialization, and in propagation-delay flight — the invariant checker's
// view of where in-network packets are.
func (p *Pipe) InTransit() int {
	n := len(p.queue) + p.inDelay
	if p.sending {
		n++
	}
	return n
}

// Stats returns the pipe's counters.
func (p *Pipe) Stats() PipeStats {
	return PipeStats{
		Name:       p.cfg.Name,
		Enqueued:   p.enqueued,
		Delivered:  p.delivered,
		DropsQueue: p.dropsQueue,
		DropsRand:  p.dropsRand,
		CEMarked:   p.ceMarked,
		BytesOut:   p.bytesOut,
	}
}

// PipeStats is a snapshot of a pipe's packet counters.
type PipeStats struct {
	Name       string
	Enqueued   uint64
	Delivered  uint64
	DropsQueue uint64
	DropsRand  uint64
	CEMarked   uint64
	BytesOut   units.DataSize
}

// Drops returns total drops from all causes.
func (s PipeStats) Drops() uint64 { return s.DropsQueue + s.DropsRand }
