package netem

import (
	"fmt"
	"time"

	"mobbr/internal/seg"
	"mobbr/internal/sim"
)

// CrossWiring splits a Path across two engine shards. The whole hop chain
// — queues, rate limits, loss RNG, radio dynamics — stays on the sender
// shard, so every random draw happens on shard 0's seed-identical RNG in
// the serial order. Only the final propagation leg crosses: the last hop's
// post-serialization delivery posts the packet over a forward cross-link to
// the receiver shard, and the receiver's ACKs post back over a return link
// with the path's AckDelay. The links' minimum delays — the last hop's base
// propagation delay and the ACK return delay, both strictly positive in
// every preset — are the sharded engine's lookahead.
//
// Custody chain for a forward packet: pipe serialization (sender shard) →
// link pending (posted, pre-barrier) → receive hold + scheduled delivery
// (receiver shard) → receiver consumes. Each stage is reachable by exactly
// one reclaim path, and the stages sum to the cross census the invariant
// checker folds into its conservation audit.
type CrossWiring struct {
	rxEng *sim.Engine
	path  *Path
	recv  PacketHandler

	fwd, back *sim.CrossLink
	// fwdHold tracks cross-delivered packets between barrier injection and
	// the delivery event on the receiver shard — the shard-crossing
	// equivalent of a pipe's propagation hold list.
	fwdHold      seg.PacketList
	fwdDeliverFn func(any)
	ackDelay     time.Duration

	// leakArmed makes the next forward injection vanish: the packet is
	// neither held, scheduled, nor released — a mailbox leak for the
	// corruption-injection tests proving the checker sees cross-shard
	// custody. leaked counts how many vanished.
	leakArmed bool
	leaked    int
}

// NewCrossWiring rewires path (built on se.Shard(0)) so its last hop
// delivers onto shard rxShard. It fails if either crossing leg has zero
// minimum delay — a zero-lookahead link admits no conservative window.
func NewCrossWiring(se *sim.ShardedEngine, path *Path, rxShard int) (*CrossWiring, error) {
	last := path.hops[len(path.hops)-1]
	if last.cfg.Delay <= 0 {
		return nil, fmt.Errorf("netem: sharded split needs a positive last-hop delay, got %v", last.cfg.Delay)
	}
	if path.cfg.AckDelay <= 0 {
		return nil, fmt.Errorf("netem: sharded split needs a positive ack delay, got %v", path.cfg.AckDelay)
	}
	w := &CrossWiring{
		rxEng:    se.Shard(rxShard),
		path:     path,
		ackDelay: path.cfg.AckDelay,
	}
	w.fwd = se.NewLink(0, rxShard, last.cfg.Delay)
	w.back = se.NewLink(rxShard, 0, path.cfg.AckDelay)
	w.fwdDeliverFn = func(v any) {
		pkt := v.(*seg.Packet)
		w.fwdHold.Remove(pkt)
		w.recv(pkt)
	}
	w.fwd.SetInjector(func(arg any, at time.Duration) {
		pkt := arg.(*seg.Packet)
		if w.leakArmed {
			w.leakArmed = false
			w.leaked++
			return
		}
		w.fwdHold.Push(pkt)
		w.rxEng.SchedulePAt(at, w.fwdDeliverFn, pkt)
	})
	w.back.SetInjector(func(arg any, at time.Duration) {
		path.InjectAck(arg.(*seg.Ack), at)
	})
	// Jitter only adds to the base delay, so every posted delay clears the
	// link's lookahead; Post's own assertion guards the contract.
	last.SetRemote(func(pkt *seg.Packet, delay time.Duration) {
		w.fwd.Post(pkt, delay)
	})
	return w, nil
}

// SetReceiver attaches the receiver-shard packet handler — the counterpart
// of Path.SetReceiver, which must stay unset in a sharded run.
func (w *CrossWiring) SetReceiver(h PacketHandler) { w.recv = h }

// ReturnAck sends an ACK from the receiver shard back to the sender shard's
// return path. It replaces Path.ReturnAckFlow for sharded receivers.
func (w *CrossWiring) ReturnAck(a *seg.Ack) { w.back.Post(a, w.ackDelay) }

// CrossPackets returns forward packets in cross-shard custody: posted but
// not yet injected, plus injected but not yet delivered. At a barrier this
// is exactly the census gap between the sender path's InTransit and the
// pool's outstanding count.
func (w *CrossWiring) CrossPackets() int { return w.fwd.Pending() + w.fwdHold.Len() }

// CrossAcks returns ACKs posted back but not yet injected (injected ACKs
// already count in the path's AckInFlight).
func (w *CrossWiring) CrossAcks() int { return w.back.Pending() }

// LeakedPackets returns how many packets ArmLeakForTest made vanish.
func (w *CrossWiring) LeakedPackets() int { return w.leaked }

// ArmLeakForTest makes the next barrier flush drop one forward packet on
// the floor: still outstanding in the pool's census, invisible to every
// in-transit count — the cross-shard leak the checker must catch within one
// audit cycle. Test/injection use only.
func (w *CrossWiring) ArmLeakForTest() { w.leakArmed = true }

// Reclaim releases everything still in cross-shard custody after the run:
// posted-but-unflushed messages and held packets go to rxPool (the receiver
// arena — per-arena counts need not balance, only the summed census), and
// posted-back ACKs to txPool. The path's own Reclaim handles injected ACKs.
func (w *CrossWiring) Reclaim(txPool, rxPool *seg.Pool) {
	w.fwd.DrainPending(func(v any) { rxPool.PutPacket(v.(*seg.Packet)) })
	w.fwdHold.Drain(rxPool.PutPacket)
	w.back.DrainPending(func(v any) { txPool.PutAck(v.(*seg.Ack)) })
}
