package netem

import (
	"fmt"
	"time"

	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// TC mirrors the knobs the paper sets on the OpenWRT router with Linux
// traffic control: an optional rate cap, added delay, random loss, and a
// queue limit on the router's uplink. Zero values mean "leave the default".
type TC struct {
	// Rate caps the router uplink (0 = line rate).
	Rate units.Bandwidth
	// Delay adds one-way propagation at the router.
	Delay time.Duration
	// Loss injects i.i.d. random loss at the router.
	Loss float64
	// QueuePackets overrides the router queue depth (e.g. the paper's
	// 10-packet shallow-buffer experiment in §5.2.3).
	QueuePackets int
	// ECNThreshold enables CE marking at the router once its queue
	// reaches this depth (0 = ECN off).
	ECNThreshold int
	// ReorderJitter adds per-packet random delay at the router,
	// reordering closely spaced packets (tc netem reorder).
	ReorderJitter time.Duration
}

// Validate checks the impairment knobs.
func (tc TC) Validate() error {
	if tc.Rate < 0 {
		return fmt.Errorf("netem: tc rate %v is negative", tc.Rate)
	}
	if tc.Delay < 0 {
		return fmt.Errorf("netem: tc delay %v is negative", tc.Delay)
	}
	if tc.Loss < 0 || tc.Loss > 1 {
		return fmt.Errorf("netem: tc loss %v out of [0,1]", tc.Loss)
	}
	if tc.QueuePackets < 0 {
		return fmt.Errorf("netem: tc queue depth %d is negative", tc.QueuePackets)
	}
	if tc.ECNThreshold < 0 {
		return fmt.Errorf("netem: tc ECN threshold %d is negative", tc.ECNThreshold)
	}
	if tc.ReorderJitter < 0 {
		return fmt.Errorf("netem: tc reorder jitter %v is negative", tc.ReorderJitter)
	}
	return nil
}

// EthernetLAN returns the paper's wired testbed: phone → USB-Ethernet NIC
// (1 Gbps) → OpenWRT router (1 Gbps) → server, sub-millisecond base RTT.
// tc impairments apply to the router hop, as in the paper.
func EthernetLAN(eng *sim.Engine, tc TC) (*Path, error) {
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	routerRate := units.Gbps
	if tc.Rate > 0 {
		routerRate = tc.Rate
	}
	routerQueue := 256
	if tc.QueuePackets > 0 {
		routerQueue = tc.QueuePackets
	}
	return NewPath(eng, PathConfig{
		Hops: []PipeConfig{
			{
				Name: "devnic",
				Rate: units.Gbps,
				// USB-to-Ethernet adapter latency (URB batching).
				Delay: 120 * time.Microsecond,
				// Device qdisc backlog (pfifo_fast default txqueuelen 1000).
				QueuePackets: 1000,
			},
			{
				Name:          "router",
				Rate:          routerRate,
				Delay:         80*time.Microsecond + tc.Delay,
				QueuePackets:  routerQueue,
				LossRate:      tc.Loss,
				ECNThreshold:  tc.ECNThreshold,
				ReorderJitter: tc.ReorderJitter,
			},
		},
		// The return direction crosses the USB adapter again.
		AckDelay: 170 * time.Microsecond,
	})
}

// WiFiLAN returns the paper's wireless testbed: the phone one meter from
// the OpenWRT access point. The air link is slower than wire, varies over
// time, and adds jitter; see NewWiFiModulator. tc impairments apply to the
// router hop.
func WiFiLAN(eng *sim.Engine, tc TC) (*Path, *WiFiModulator, error) {
	if err := tc.Validate(); err != nil {
		return nil, nil, err
	}
	routerQueue := 256
	if tc.QueuePackets > 0 {
		routerQueue = tc.QueuePackets
	}
	airRate := 600 * units.Mbps // 802.11ac short-range effective uplink
	if tc.Rate > 0 && tc.Rate < airRate {
		airRate = tc.Rate
	}
	path, err := NewPath(eng, PathConfig{
		Hops: []PipeConfig{
			{
				Name:         "air",
				Rate:         airRate,
				Delay:        800 * time.Microsecond, // contention + aggregation latency
				QueuePackets: 512,                    // AP + driver aggregation buffers
			},
			{
				Name:         "router",
				Rate:         units.Gbps,
				Delay:        200*time.Microsecond + tc.Delay,
				QueuePackets: routerQueue,
				LossRate:     tc.Loss,
			},
		},
		AckDelay: 900 * time.Microsecond,
	})
	if err != nil {
		return nil, nil, err
	}
	mod := NewWiFiModulator(eng, path.Hop(0), airRate)
	return path, mod, nil
}

// Cellular5G returns the forward-looking scenario both §4 and Appendix A.1
// point at: a 5G mmWave uplink of ≈200 Mbps (per the paper's reference to
// Narayanan et al.) with lower radio latency than LTE. At these rates the
// phone's CPU — not the link — becomes the bottleneck again, so the pacing
// problems the LTE experiment hides are expected to reappear.
func Cellular5G(eng *sim.Engine, tc TC) (*Path, error) {
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	rate := 200 * units.Mbps
	if tc.Rate > 0 {
		rate = tc.Rate
	}
	q := 400
	if tc.QueuePackets > 0 {
		q = tc.QueuePackets
	}
	return NewPath(eng, PathConfig{
		Hops: []PipeConfig{
			{
				Name:         "radio",
				Rate:         rate,
				Delay:        8*time.Millisecond + tc.Delay,
				QueuePackets: q,
				LossRate:     tc.Loss,
			},
			{
				Name:         "core",
				Rate:         units.Gbps,
				Delay:        5 * time.Millisecond,
				QueuePackets: 1000,
			},
		},
		AckDelay: 7 * time.Millisecond,
	})
}

// CellularLTE returns the Appendix A.1 setup: a T-Mobile LTE uplink. The
// radio link is bandwidth-limited (≈15–20 Mbps), has tens of milliseconds
// of latency, and deep (bufferbloat-prone) eNodeB buffers — so the phone's
// CPU is never the bottleneck, which is exactly the paper's point.
func CellularLTE(eng *sim.Engine, tc TC) (*Path, error) {
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	rate := 18 * units.Mbps
	if tc.Rate > 0 {
		rate = tc.Rate
	}
	q := 300
	if tc.QueuePackets > 0 {
		q = tc.QueuePackets
	}
	return NewPath(eng, PathConfig{
		Hops: []PipeConfig{
			{
				Name:         "radio",
				Rate:         rate,
				Delay:        25*time.Millisecond + tc.Delay,
				QueuePackets: q,
				LossRate:     tc.Loss,
			},
			{
				Name:         "core",
				Rate:         units.Gbps,
				Delay:        10 * time.Millisecond,
				QueuePackets: 1000,
			},
		},
		AckDelay: 20 * time.Millisecond,
	})
}
