package netem

import (
	"time"

	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// WiFiModulator perturbs an air-link pipe's rate over time to emulate
// 802.11 rate adaptation and interference: every interval the rate is
// resampled as base × N(1, sigma), clamped to [floor, ceil] fractions of the
// base. The paper notes its WiFi results "may have increased variability due
// to WiFi artifacts such as interference, variable network speeds" (§3.2);
// this is the stand-in for those artifacts.
type WiFiModulator struct {
	eng      *sim.Engine
	pipe     *Pipe
	base     units.Bandwidth
	interval time.Duration
	sigma    float64
	floor    float64
	ceil     float64
	started  bool
}

// NewWiFiModulator returns a modulator for pipe around the given base rate.
// Call Start to begin modulation.
func NewWiFiModulator(eng *sim.Engine, pipe *Pipe, base units.Bandwidth) *WiFiModulator {
	return &WiFiModulator{
		eng:      eng,
		pipe:     pipe,
		base:     base,
		interval: 20 * time.Millisecond,
		sigma:    0.12,
		floor:    0.55,
		ceil:     1.10,
	}
}

// Start begins periodic rate resampling. Calling Start twice is a no-op.
func (m *WiFiModulator) Start() {
	if m.started {
		return
	}
	m.started = true
	m.tick()
}

func (m *WiFiModulator) tick() {
	f := 1 + m.eng.Rand().NormFloat64()*m.sigma
	if f < m.floor {
		f = m.floor
	}
	if f > m.ceil {
		f = m.ceil
	}
	m.pipe.SetRate(units.Bandwidth(float64(m.base) * f))
	m.eng.Schedule(m.interval, m.tick)
}
