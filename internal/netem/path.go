package netem

import (
	"fmt"
	"time"

	"mobbr/internal/seg"
	"mobbr/internal/sim"
)

// AckHandler consumes ACKs arriving back at the sender.
type AckHandler func(a *seg.Ack)

// PathConfig assembles hops into a one-way data path with an ACK return
// path. The testbed topology (Fig. 1 of the paper) is phone → OpenWRT
// router → server, so the default paths built by the presets have two hops:
// the device NIC and the router uplink.
type PathConfig struct {
	// Hops, in order from sender to receiver.
	Hops []PipeConfig
	// AckDelay is the one-way return latency for ACKs. The return
	// direction carries only ACK traffic in the paper's uplink workload,
	// so it is modelled as pure delay.
	AckDelay time.Duration
}

// Validate checks the path and every hop.
func (cfg PathConfig) Validate() error {
	if len(cfg.Hops) == 0 {
		return fmt.Errorf("netem: path needs at least one hop")
	}
	if cfg.AckDelay < 0 {
		return fmt.Errorf("netem: negative ack delay %v", cfg.AckDelay)
	}
	for i, h := range cfg.Hops {
		if err := h.Validate(); err != nil {
			return fmt.Errorf("hop %d: %w", i, err)
		}
	}
	return nil
}

// Path is the emulated network between the phone's stack and the iPerf
// server. The receiver is attached with SetReceiver; ACKs are returned to
// the handler passed to ReturnAck.
type Path struct {
	eng   *sim.Engine
	cfg   PathConfig
	hops  []*Pipe
	recv  PacketHandler
	drops uint64

	pool *seg.Pool
	// ackTo holds the registered per-flow ACK handlers (index = flow id);
	// ackList tracks ACKs in return flight so the run-end reclaim can reach
	// them, and ackDeliverFn is the shared propagation-complete callback
	// (see sim.Engine.ScheduleP).
	ackTo        []AckHandler
	ackList      seg.AckList
	ackDeliverFn func(any)
}

// NewPath builds the chain of pipes described by cfg, rejecting invalid
// configurations with an error.
func NewPath(eng *sim.Engine, cfg PathConfig) (*Path, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Path{eng: eng, cfg: cfg}
	p.ackDeliverFn = func(v any) {
		a := v.(*seg.Ack)
		p.ackList.Remove(a)
		p.ackTo[a.Flow](a)
	}
	// Build from the last hop backwards so each pipe can point at the
	// next one's Enqueue.
	next := PacketHandler(func(pkt *seg.Packet) {
		if p.recv != nil {
			p.recv(pkt)
		}
	})
	pipes := make([]*Pipe, len(cfg.Hops))
	for i := len(cfg.Hops) - 1; i >= 0; i-- {
		downstream := next
		pipe, err := NewPipe(eng, cfg.Hops[i], downstream)
		if err != nil {
			return nil, err // unreachable: Validate covered every hop
		}
		pipes[i] = pipe
	}
	for i := 0; i < len(pipes)-1; i++ {
		i := i
		// Rewire hop i to feed hop i+1 and count inter-hop drops.
		pipes[i].next = func(pkt *seg.Packet) {
			if !pipes[i+1].Enqueue(pkt) {
				p.drops++
			}
		}
	}
	p.hops = pipes
	return p, nil
}

// SetReceiver attaches the handler that receives packets at the far end.
func (p *Path) SetReceiver(h PacketHandler) { p.recv = h }

// SetPool attaches the run's pool to the path and every hop, so drops
// release packets and the run-end reclaim can return held objects.
func (p *Path) SetPool(pool *seg.Pool) {
	p.pool = pool
	for _, h := range p.hops {
		h.SetPool(pool)
	}
}

// RegisterAckHandler routes ACKs for flow to h on the ReturnAckFlow fast
// path. Flow ids are small dense integers (iperf numbers them 0..n-1).
func (p *Path) RegisterAckHandler(flow int, h AckHandler) {
	if h == nil {
		panic("netem: RegisterAckHandler needs a handler")
	}
	for len(p.ackTo) <= flow {
		p.ackTo = append(p.ackTo, nil)
	}
	p.ackTo[flow] = h
}

// Send offers a packet to the first hop. It reports whether the packet was
// accepted by that hop (drop-tail or loss injection may refuse it).
func (p *Path) Send(pkt *seg.Packet) bool {
	ok := p.hops[0].Enqueue(pkt)
	if !ok {
		p.drops++
	}
	return ok
}

// ReturnAck delivers an ACK to the given handler after the return path
// delay. This is the flexible (closure-scheduling) form kept for direct
// tests; the data path uses ReturnAckFlow. The ACK is tracked in the
// return-flight hold list either way.
func (p *Path) ReturnAck(a *seg.Ack, to AckHandler) {
	if to == nil {
		panic("netem: ReturnAck needs a handler")
	}
	p.ackList.Push(a)
	p.eng.Schedule(p.cfg.AckDelay, func() {
		p.ackList.Remove(a)
		to(a)
	})
}

// ReturnAckFlow delivers an ACK to the handler registered for its flow
// after the return path delay, without allocating: the shared deliver
// callback rides ScheduleP and the ACK itself is the event argument.
// Ordering (one engine sequence number) is identical to ReturnAck.
func (p *Path) ReturnAckFlow(a *seg.Ack) {
	p.ackList.Push(a)
	p.eng.ScheduleP(p.cfg.AckDelay, p.ackDeliverFn, a)
}

// AckInFlight returns the number of ACKs currently on the return path.
func (p *Path) AckInFlight() int { return p.ackList.Len() }

// Reclaim releases everything the path still holds — packets on every hop
// and ACKs in return flight — back to the pool. Called by the run harness
// after the engine stops.
func (p *Path) Reclaim() {
	for _, h := range p.hops {
		h.Reclaim()
	}
	p.ackList.Drain(p.pool.PutAck)
}

// Hop returns the i-th pipe, for configuring rates (WiFi) or reading stats.
func (p *Path) Hop(i int) *Pipe { return p.hops[i] }

// NumHops returns the number of hops.
func (p *Path) NumHops() int { return len(p.hops) }

// TotalDrops returns the count of packets dropped anywhere along the path.
func (p *Path) TotalDrops() uint64 {
	n := p.drops
	return n
}

// InTransit returns the packets currently inside the path: queued, being
// serialized, or in propagation flight on any hop. (ACKs in return flight
// are not counted; the return direction is pure delay.)
func (p *Path) InTransit() int {
	n := 0
	for _, h := range p.hops {
		n += h.InTransit()
	}
	return n
}

// Stats returns per-hop counters.
func (p *Path) Stats() []PipeStats {
	out := make([]PipeStats, len(p.hops))
	for i, h := range p.hops {
		out[i] = h.Stats()
	}
	return out
}

// MinRTT returns the no-load round-trip time of the path: per-hop
// propagation plus one MSS serialization per hop plus the ACK return delay.
func (p *Path) MinRTT() time.Duration {
	var d time.Duration
	for _, h := range p.hops {
		d += h.cfg.Delay + h.cfg.Rate.TimeToSend(seg.MSS)
	}
	return d + p.cfg.AckDelay
}
