package netem

import (
	"fmt"
	"time"

	"mobbr/internal/seg"
	"mobbr/internal/sim"
)

// AckHandler consumes ACKs arriving back at the sender.
type AckHandler func(a *seg.Ack)

// PathConfig assembles hops into a one-way data path with an ACK return
// path. The testbed topology (Fig. 1 of the paper) is phone → OpenWRT
// router → server, so the default paths built by the presets have two hops:
// the device NIC and the router uplink.
type PathConfig struct {
	// Hops, in order from sender to receiver.
	Hops []PipeConfig
	// AckDelay is the one-way return latency for ACKs. The return
	// direction carries only ACK traffic in the paper's uplink workload,
	// so it is modelled as pure delay.
	AckDelay time.Duration
}

// Validate checks the path and every hop.
func (cfg PathConfig) Validate() error {
	if len(cfg.Hops) == 0 {
		return fmt.Errorf("netem: path needs at least one hop")
	}
	if cfg.AckDelay < 0 {
		return fmt.Errorf("netem: negative ack delay %v", cfg.AckDelay)
	}
	for i, h := range cfg.Hops {
		if err := h.Validate(); err != nil {
			return fmt.Errorf("hop %d: %w", i, err)
		}
	}
	return nil
}

// Path is the emulated network between the phone's stack and the iPerf
// server. The receiver is attached with SetReceiver; ACKs are returned to
// the handler passed to ReturnAck.
type Path struct {
	eng   *sim.Engine
	cfg   PathConfig
	hops  []*Pipe
	recv  PacketHandler
	drops uint64
}

// NewPath builds the chain of pipes described by cfg, rejecting invalid
// configurations with an error.
func NewPath(eng *sim.Engine, cfg PathConfig) (*Path, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Path{eng: eng, cfg: cfg}
	// Build from the last hop backwards so each pipe can point at the
	// next one's Enqueue.
	next := PacketHandler(func(pkt *seg.Packet) {
		if p.recv != nil {
			p.recv(pkt)
		}
	})
	pipes := make([]*Pipe, len(cfg.Hops))
	for i := len(cfg.Hops) - 1; i >= 0; i-- {
		downstream := next
		pipe, err := NewPipe(eng, cfg.Hops[i], downstream)
		if err != nil {
			return nil, err // unreachable: Validate covered every hop
		}
		pipes[i] = pipe
	}
	for i := 0; i < len(pipes)-1; i++ {
		i := i
		// Rewire hop i to feed hop i+1 and count inter-hop drops.
		pipes[i].next = func(pkt *seg.Packet) {
			if !pipes[i+1].Enqueue(pkt) {
				p.drops++
			}
		}
	}
	p.hops = pipes
	return p, nil
}

// SetReceiver attaches the handler that receives packets at the far end.
func (p *Path) SetReceiver(h PacketHandler) { p.recv = h }

// Send offers a packet to the first hop. It reports whether the packet was
// accepted by that hop (drop-tail or loss injection may refuse it).
func (p *Path) Send(pkt *seg.Packet) bool {
	ok := p.hops[0].Enqueue(pkt)
	if !ok {
		p.drops++
	}
	return ok
}

// ReturnAck delivers an ACK to the sender-side handler after the return
// path delay.
func (p *Path) ReturnAck(a *seg.Ack, to AckHandler) {
	if to == nil {
		panic("netem: ReturnAck needs a handler")
	}
	p.eng.Schedule(p.cfg.AckDelay, func() { to(a) })
}

// Hop returns the i-th pipe, for configuring rates (WiFi) or reading stats.
func (p *Path) Hop(i int) *Pipe { return p.hops[i] }

// NumHops returns the number of hops.
func (p *Path) NumHops() int { return len(p.hops) }

// TotalDrops returns the count of packets dropped anywhere along the path.
func (p *Path) TotalDrops() uint64 {
	n := p.drops
	return n
}

// InTransit returns the packets currently inside the path: queued, being
// serialized, or in propagation flight on any hop. (ACKs in return flight
// are not counted; the return direction is pure delay.)
func (p *Path) InTransit() int {
	n := 0
	for _, h := range p.hops {
		n += h.InTransit()
	}
	return n
}

// Stats returns per-hop counters.
func (p *Path) Stats() []PipeStats {
	out := make([]PipeStats, len(p.hops))
	for i, h := range p.hops {
		out[i] = h.Stats()
	}
	return out
}

// MinRTT returns the no-load round-trip time of the path: per-hop
// propagation plus one MSS serialization per hop plus the ACK return delay.
func (p *Path) MinRTT() time.Duration {
	var d time.Duration
	for _, h := range p.hops {
		d += h.cfg.Delay + h.cfg.Rate.TimeToSend(seg.MSS)
	}
	return d + p.cfg.AckDelay
}
