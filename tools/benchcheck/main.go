// Command benchcheck gates allocation regressions in CI: it reads `go test
// -bench -benchmem` output on stdin, extracts allocs/op per benchmark, and
// fails when any benchmark named in the checked-in baseline regresses past
// the tolerance. The simulator is deterministic, so allocs/op is a stable
// fingerprint of the engine's fast path even at -benchtime 1x.
//
//	go test -bench 'BenchmarkEngineThroughput' -benchmem -benchtime 1x -run XXX . \
//	    | go run ./tools/benchcheck -baseline BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Baseline is one benchmark's checked-in reference numbers.
type Baseline struct {
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// benchLine matches `BenchmarkName[-P] <iters> ... <N> allocs/op`, where -P
// is the GOMAXPROCS suffix gotest appends on multi-core hosts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+.*?\s(\d+) allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline JSON")
	tolerance := flag.Float64("tolerance", 1.10, "fail when measured allocs/op exceed baseline × this")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	baselines := map[string]Baseline{}
	if err := json.Unmarshal(raw, &baselines); err != nil {
		fatalf("parsing %s: %v", *baselinePath, err)
	}
	if len(baselines) == 0 {
		fatalf("%s names no benchmarks", *baselinePath)
	}

	measured := map[string]int64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the output through so CI logs keep it
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		measured[m[1]] = n
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}

	failed := false
	for name, base := range baselines {
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL %s: benchmark missing from input\n", name)
			failed = true
			continue
		}
		limit := int64(float64(base.AllocsPerOp) * *tolerance)
		switch {
		case got > limit:
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL %s: %d allocs/op > limit %d (baseline %d × %.2f)\n",
				name, got, limit, base.AllocsPerOp, *tolerance)
			failed = true
		case float64(got) < 0.7*float64(base.AllocsPerOp):
			fmt.Fprintf(os.Stderr, "benchcheck: note: %s improved to %d allocs/op (baseline %d) — consider re-baselining\n",
				name, got, base.AllocsPerOp)
		default:
			fmt.Fprintf(os.Stderr, "benchcheck: ok %s: %d allocs/op (baseline %d)\n", name, got, base.AllocsPerOp)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
