// Command benchcheck gates performance regressions in CI: it reads `go test
// -bench -benchmem` output on stdin, extracts allocs/op and ns/op per
// benchmark, and fails when any benchmark named in the checked-in baseline
// regresses past its tolerance. The simulator is deterministic, so allocs/op
// is a stable fingerprint of the engine's fast path even at -benchtime 1x;
// ns/op is noisier, so it carries its own (looser) tolerance and is only
// gated for baselines that record it.
//
//	go test -bench 'BenchmarkEngineThroughput' -benchmem -benchtime 1x -run XXX . \
//	    | go run ./tools/benchcheck -baseline BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"text/tabwriter"
)

// Baseline is one benchmark's checked-in reference numbers. NsPerOp is
// optional: zero (or absent) means wall time is not gated for that
// benchmark — use it for benchmarks whose runtime is too short or too
// machine-dependent to be a stable signal.
type Baseline struct {
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
}

// measurement is what one benchmark output line yields.
type measurement struct {
	allocs   int64
	ns       float64
	hasNs    bool
	hasAlloc bool
}

// benchLine matches `BenchmarkName[-P] <iters> <rest>`, where -P is the
// GOMAXPROCS suffix gotest appends on multi-core hosts. Metrics are pulled
// out of <rest> by unit.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

var (
	nsField    = regexp.MustCompile(`([\d.]+) ns/op`)
	allocField = regexp.MustCompile(`(\d+) allocs/op`)
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline JSON")
	tolerance := flag.Float64("tolerance", 1.10, "fail when measured allocs/op exceed baseline × this")
	nsTolerance := flag.Float64("ns-tolerance", 1.15, "fail when measured ns/op exceed baseline × this (baselines with ns_per_op only)")
	verbose := flag.Bool("v", false, "print the baseline → measured delta table even when every gate passes")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	baselines := map[string]Baseline{}
	if err := json.Unmarshal(raw, &baselines); err != nil {
		fatalf("parsing %s: %v", *baselinePath, err)
	}
	if len(baselines) == 0 {
		fatalf("%s names no benchmarks", *baselinePath)
	}

	measured := map[string]measurement{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the output through so CI logs keep it
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var meas measurement
		if f := nsField.FindStringSubmatch(m[2]); f != nil {
			if v, err := strconv.ParseFloat(f[1], 64); err == nil {
				meas.ns, meas.hasNs = v, true
			}
		}
		if f := allocField.FindStringSubmatch(m[2]); f != nil {
			if v, err := strconv.ParseInt(f[1], 10, 64); err == nil {
				meas.allocs, meas.hasAlloc = v, true
			}
		}
		if meas.hasNs || meas.hasAlloc {
			measured[m[1]] = meas
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("reading stdin: %v", err)
	}

	failed := false
	names := make([]string, 0, len(baselines))
	for name := range baselines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baselines[name]
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL %s: benchmark missing from input\n", name)
			failed = true
			continue
		}
		switch {
		case !got.hasAlloc:
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL %s: no allocs/op in input (run with -benchmem)\n", name)
			failed = true
		case got.allocs > int64(float64(base.AllocsPerOp)**tolerance):
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL %s: %d allocs/op > limit %d (baseline %d × %.2f)\n",
				name, got.allocs, int64(float64(base.AllocsPerOp)**tolerance), base.AllocsPerOp, *tolerance)
			failed = true
		case float64(got.allocs) < 0.7*float64(base.AllocsPerOp):
			fmt.Fprintf(os.Stderr, "benchcheck: note: %s improved to %d allocs/op (baseline %d) — consider re-baselining\n",
				name, got.allocs, base.AllocsPerOp)
		default:
			fmt.Fprintf(os.Stderr, "benchcheck: ok %s: %d allocs/op (baseline %d)\n", name, got.allocs, base.AllocsPerOp)
		}
		if base.NsPerOp <= 0 {
			continue
		}
		switch {
		case !got.hasNs:
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL %s: no ns/op in input\n", name)
			failed = true
		case got.ns > base.NsPerOp**nsTolerance:
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL %s: %.0f ns/op > limit %.0f (baseline %.0f × %.2f)\n",
				name, got.ns, base.NsPerOp**nsTolerance, base.NsPerOp, *nsTolerance)
			failed = true
		case got.ns < 0.7*base.NsPerOp:
			fmt.Fprintf(os.Stderr, "benchcheck: note: %s improved to %.0f ns/op (baseline %.0f) — consider re-baselining\n",
				name, got.ns, base.NsPerOp)
		default:
			fmt.Fprintf(os.Stderr, "benchcheck: ok %s: %.0f ns/op (baseline %.0f)\n", name, got.ns, base.NsPerOp)
		}
	}
	if failed || *verbose {
		printDeltaTable(os.Stderr, names, baselines, measured)
	}
	if failed {
		os.Exit(1)
	}
}

// printDeltaTable renders every gated benchmark's baseline → measured
// movement in one place, so a failing CI run shows the whole picture (what
// regressed, by how much, and what stayed flat) without scrolling through
// interleaved pass/fail lines.
func printDeltaTable(w *os.File, names []string, baselines map[string]Baseline, measured map[string]measurement) {
	fmt.Fprintln(w, "\nbenchcheck: baseline → measured deltas:")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "  benchmark\tallocs/op (old → new)\tns/op (old → new)")
	pct := func(old, new float64) string {
		if old <= 0 {
			return ""
		}
		return fmt.Sprintf(" (%+.1f%%)", (new-old)/old*100)
	}
	for _, name := range names {
		base := baselines[name]
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(tw, "  %s\tmissing from input\t\n", name)
			continue
		}
		allocs := "-"
		if got.hasAlloc {
			allocs = fmt.Sprintf("%d → %d%s", base.AllocsPerOp, got.allocs,
				pct(float64(base.AllocsPerOp), float64(got.allocs)))
		}
		ns := "not gated"
		if base.NsPerOp > 0 {
			ns = "-"
			if got.hasNs {
				ns = fmt.Sprintf("%.0f → %.0f%s", base.NsPerOp, got.ns, pct(base.NsPerOp, got.ns))
			}
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", name, allocs, ns)
	}
	tw.Flush()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
