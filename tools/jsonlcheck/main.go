// Command jsonlcheck validates a JSONL telemetry trace: the file must be
// non-empty, every line must be a JSON object, and the virtual timestamps
// (t_ns) must be monotonically non-decreasing. CI runs it against the
// output of a short `mobbr -trace` run.
//
// Usage: jsonlcheck FILE
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jsonlcheck FILE")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lines := 0
	prev := int64(-1)
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			fmt.Fprintf(os.Stderr, "%s:%d: unparseable JSONL: %v\n", os.Args[1], lines, err)
			os.Exit(1)
		}
		if kind, _ := m["kind"].(string); kind == "" {
			fmt.Fprintf(os.Stderr, "%s:%d: missing kind\n", os.Args[1], lines)
			os.Exit(1)
		}
		tns, ok := m["t_ns"].(float64)
		if !ok {
			fmt.Fprintf(os.Stderr, "%s:%d: missing t_ns\n", os.Args[1], lines)
			os.Exit(1)
		}
		if int64(tns) < prev {
			fmt.Fprintf(os.Stderr, "%s:%d: t_ns %d < previous %d\n", os.Args[1], lines, int64(tns), prev)
			os.Exit(1)
		}
		prev = int64(tns)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if lines == 0 {
		fmt.Fprintf(os.Stderr, "%s: empty trace\n", os.Args[1])
		os.Exit(1)
	}
	fmt.Printf("%s: %d events ok\n", os.Args[1], lines)
}
