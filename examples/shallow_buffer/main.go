// Shallow buffer: why BBR cannot simply turn pacing off (§5.2.3). Against
// a rate-limited router with a 10-packet queue, unpaced BBR bursts overrun
// the buffer: goodput may rise, but retransmissions explode and RTT climbs —
// pacing is doing real congestion-control work.
//
//	go run ./examples/shallow_buffer
package main

import (
	"fmt"
	"log"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/netem"
	"mobbr/internal/units"
)

func main() {
	fmt.Println("Low-End Pixel 4, 20 conns, router capped at 600 Mbps with a")
	fmt.Println("10-packet (shallow) buffer — pacing on vs off:")
	fmt.Println()

	off := false
	for _, p := range []struct {
		label    string
		override *bool
	}{
		{"pacing on ", nil},
		{"pacing off", &off},
	} {
		res, err := core.Run(core.Spec{
			Device:   device.Pixel4,
			CPU:      device.LowEnd,
			CC:       "bbr",
			Conns:    20,
			Duration: 5 * time.Second,
			Warmup:   time.Second,
			Network:  core.Ethernet,
			TC: netem.TC{
				Rate:         600 * units.Mbps,
				QueuePackets: 10,
			},
			PacingOverride: p.override,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		fmt.Printf("%s  goodput %6.1f Mbps   retransmits %6d   rtt %5.2f ms   drops %d\n",
			p.label, float64(r.Goodput)/1e6, r.Retransmits, float64(r.AvgRTT)/1e6, r.PathDrops)
	}
	fmt.Println()
	fmt.Println("The paper reports retransmissions jumping from 37 to ~13,500")
	fmt.Println("when pacing is disabled in this setting.")
}
