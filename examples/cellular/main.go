// Cellular: the paper's Appendix A.1 control experiment. Over an LTE
// uplink the path is bandwidth-limited (≈18 Mbps), not CPU-limited, so BBR
// and Cubic perform the same even on the Low-End configuration — the pacing
// bottleneck only matters once the network can outrun the CPU.
//
//	go run ./examples/cellular
package main

import (
	"fmt"
	"log"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
)

func main() {
	fmt.Println("Pixel 6 Low-End over LTE (bandwidth-limited uplink)")
	fmt.Println()
	fmt.Printf("%8s %12s %12s\n", "conns", "cubic", "bbr")
	for _, conns := range []int{1, 5, 10, 20} {
		var got [2]float64
		for i, cc := range []string{"cubic", "bbr"} {
			res, err := core.Run(core.Spec{
				Device:   device.Pixel6,
				CPU:      device.LowEnd,
				CC:       cc,
				Conns:    conns,
				Duration: 8 * time.Second,
				Warmup:   2 * time.Second,
				Network:  core.Cellular,
			})
			if err != nil {
				log.Fatal(err)
			}
			got[i] = float64(res.Report.Goodput) / 1e6
		}
		fmt.Printf("%8d %9.1f Mbps %9.1f Mbps\n", conns, got[0], got[1])
	}
	fmt.Println()
	fmt.Println("Compare with examples/quickstart: on Ethernet the same device")
	fmt.Println("shows a 2×+ gap. Future 5G uplinks (~200 Mbps) would expose the")
	fmt.Println("pacing bottleneck that LTE hides.")
}
