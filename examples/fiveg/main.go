// 5G: the paper's forward-looking warning made concrete. Appendix A.1
// shows BBR ≈ Cubic on LTE because ~18 Mbps never stresses the CPU — but
// "recent work on mmWave 5G suggests cellular uplinks can reach up to
// 200 Mbps [and then] the pacing problems will become significant". This
// example runs the same Low-End phone on the LTE and 5G paths side by side.
//
//	go run ./examples/fiveg
package main

import (
	"fmt"
	"log"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/units"
)

func main() {
	fmt.Println("Pixel 6 Low-End: LTE (~18 Mbps) vs 5G mmWave (~200 Mbps) uplink")
	fmt.Println()
	fmt.Printf("%10s %8s %12s %12s %10s\n", "network", "conns", "cubic", "bbr", "bbr/cubic")
	for _, net := range []core.Network{core.Cellular, core.Cellular5G} {
		for _, conns := range []int{1, 20} {
			var got [2]float64
			for i, cc := range []string{"cubic", "bbr"} {
				spec := core.Spec{
					Device:   device.Pixel6,
					CPU:      device.LowEnd,
					CC:       cc,
					Conns:    conns,
					Duration: 6 * time.Second,
					Warmup:   time.Second,
					Network:  net,
				}
				if net == core.Cellular5G {
					// High-BDP path: Android's wmem auto-tuning
					// would grow the send buffer about this far.
					spec.SndBuf = units.MB
				}
				res, err := core.Run(spec)
				if err != nil {
					log.Fatal(err)
				}
				got[i] = float64(res.Report.Goodput) / 1e6
			}
			fmt.Printf("%10s %8d %9.1f Mbps %9.1f Mbps %9.2f\n",
				net, conns, got[0], got[1], got[1]/got[0])
		}
	}
	fmt.Println()
	fmt.Println("On LTE the ratio stays ~1. On 5G with 20 connections the pacing")
	fmt.Println("bottleneck reappears — the capacity is there, the CPU is not.")
}
