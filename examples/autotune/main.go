// Autotune: search for the optimal pacing stride automatically — the
// §7.1.2 future work. The tuner hill-climbs over strides using the
// simulator as the objective, with an RTT budget so the winner keeps
// pacing's latency benefit.
//
//	go run ./examples/autotune
//	go run ./examples/autotune -config default -budget 3
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/tuner"
)

func main() {
	cfgName := flag.String("config", "low", "CPU config: low, mid, default")
	conns := flag.Int("conns", 20, "parallel connections")
	budget := flag.Float64("budget", 2.0, "RTT budget as a multiple of the 1x baseline (0 = none)")
	flag.Parse()

	var cfg device.Config
	switch *cfgName {
	case "low":
		cfg = device.LowEnd
	case "mid":
		cfg = device.MidEnd
	case "default":
		cfg = device.Default
	default:
		log.Fatalf("unknown config %q", *cfgName)
	}

	spec := core.Spec{
		Device: device.Pixel4, CPU: cfg, CC: "bbr",
		Conns: *conns, Network: core.Ethernet,
	}
	fmt.Printf("Hill-climbing the pacing stride on %v, %d conns (RTT budget %.1fx)\n\n",
		cfg, *conns, *budget)

	res, err := tuner.HillClimb(spec, tuner.Options{
		Seeds:     1,
		Duration:  3 * time.Second,
		RTTBudget: *budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s %12s %10s %8s\n", "stride", "goodput", "rtt", "score")
	for _, tr := range res.Trials {
		fmt.Printf("%7.1fx %9.1f Mbps %7.2f ms %8.1f\n",
			tr.Stride, tr.GoodputMbps, tr.RTTms, tr.Score)
	}
	fmt.Printf("\nbest: %.1fx at %.1f Mbps — %.2fx over stock pacing\n",
		res.Best.Stride, res.Best.GoodputMbps, res.Improvement())
}
