// Quickstart: reproduce the paper's headline result in a few lines — BBR
// and Cubic uploading over 20 parallel connections from a Low-End Pixel 4,
// as in Figure 2a of "Are Mobiles Ready for BBR?" (IMC '22).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
)

func main() {
	fmt.Println("Low-End Pixel 4, Ethernet LAN, 20-connection bulk upload")
	fmt.Println()
	for _, cc := range []string{"cubic", "bbr"} {
		res, err := core.Run(core.Spec{
			Device:   device.Pixel4,
			CPU:      device.LowEnd,
			CC:       cc,
			Conns:    20,
			Duration: 5 * time.Second,
			Warmup:   time.Second,
			Network:  core.Ethernet,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		fmt.Printf("%-6s goodput %6.1f Mbps   rtt %5.2f ms   cpu %3.0f%%   retransmits %d\n",
			cc, float64(r.Goodput)/1e6, float64(r.AvgRTT)/1e6, r.CPUUtil*100, r.Retransmits)
	}
	fmt.Println()
	fmt.Println("The paper measures Cubic ≈ 310 Mbps and BBR ≈ 138 Mbps here:")
	fmt.Println("BBR's packet pacing costs a timer event per data-send, which a")
	fmt.Println("576 MHz LITTLE core cannot keep up with across 20 sockets.")
}
