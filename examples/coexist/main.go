// Coexist: BBR and Cubic sharing one bottleneck — the inter-protocol side
// of §7.1.3's fairness concern (cf. Ware et al., IMC '19, which the paper
// cites). Flows alternate algorithms; the example reports each protocol's
// aggregate share and how pacing strides shift it.
//
//	go run ./examples/coexist
package main

import (
	"fmt"
	"log"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/netem"
	"mobbr/internal/units"
)

func main() {
	fmt.Println("5 BBR + 5 Cubic flows through a 600 Mbps bottleneck (High-End")
	fmt.Println("CPU, so the network — not pacing overhead — decides shares):")
	fmt.Println()
	fmt.Printf("%12s %12s %12s %8s\n", "stride", "BBR share", "Cubic share", "BBR/Cubic")
	for _, stride := range []float64{1, 10} {
		res, err := core.Run(core.Spec{
			Device:   device.Pixel4,
			CPU:      device.HighEnd,
			CC:       "bbr,cubic", // alternate per connection
			Conns:    10,
			Duration: 6 * time.Second,
			Warmup:   time.Second,
			Network:  core.Ethernet,
			TC:       netem.TC{Rate: 600 * units.Mbps, QueuePackets: 128},
			Stride:   stride,
		})
		if err != nil {
			log.Fatal(err)
		}
		var bbrShare, cubicShare float64
		for i, g := range res.Report.PerConn {
			if i%2 == 0 {
				bbrShare += float64(g) / 1e6
			} else {
				cubicShare += float64(g) / 1e6
			}
		}
		fmt.Printf("%11.0fx %7.1f Mbps %7.1f Mbps %8.2f\n",
			stride, bbrShare, cubicShare, bbrShare/cubicShare)
	}
	fmt.Println()
	fmt.Println("At stock pacing, BBR v1 famously starves loss-based Cubic in")
	fmt.Println("moderate buffers (cf. Ware et al.). With a 10x stride the")
	fmt.Println("tables turn: BBR's long idle gaps hand the queue to Cubic and")
	fmt.Println("its own bursts take the drops — the §7.1.3 fairness worry is")
	fmt.Println("real, in the direction of hurting the *strided* flows.")
}
