// Stride tuning: sweep the paper's pacing stride (§6.2) on a chosen device
// configuration and report where goodput peaks, alongside the RTT cost —
// the trade-off behind Figure 8 and Table 2.
//
//	go run ./examples/stride_tuning
//	go run ./examples/stride_tuning -config default -conns 20
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/units"
)

func main() {
	cfgName := flag.String("config", "low", "CPU config: low, mid, default")
	conns := flag.Int("conns", 20, "parallel connections")
	dur := flag.Duration("dur", 4*time.Second, "duration per run")
	flag.Parse()

	var cfg device.Config
	switch *cfgName {
	case "low":
		cfg = device.LowEnd
	case "mid":
		cfg = device.MidEnd
	case "default":
		cfg = device.Default
	default:
		log.Fatalf("unknown config %q", *cfgName)
	}

	fmt.Printf("Pacing-stride sweep: Pixel 4 %v, %d connections, BBR\n\n", cfg, *conns)
	fmt.Printf("%7s %12s %10s %10s %12s\n", "stride", "goodput", "rtt", "skb", "idle")

	bestStride, bestGoodput := 0.0, 0.0
	for _, stride := range []float64{1, 2, 5, 10, 20, 50} {
		res, err := core.Run(core.Spec{
			Device:   device.Pixel4,
			CPU:      cfg,
			CC:       "bbr",
			Conns:    *conns,
			Duration: *dur,
			Warmup:   *dur / 5,
			Network:  core.Ethernet,
			Stride:   stride,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Report
		g := float64(r.Goodput) / 1e6
		fmt.Printf("%6.0fx %9.1f Mbps %7.2f ms %7.1f Kb %9.2f ms\n",
			stride, g, float64(r.AvgRTT)/1e6,
			units.DataSize(r.AvgSKB).Kilobits(), float64(r.AvgIdle)/1e6)
		if g > bestGoodput {
			bestGoodput, bestStride = g, stride
		}
	}
	fmt.Printf("\nbest stride here: %.0fx (%.1f Mbps)\n", bestStride, bestGoodput)
	fmt.Println("The paper finds 10x best for Low-End and 5x for Mid-End/Default:")
	fmt.Println("larger strides amortize the pacing-timer overhead until the")
	fmt.Println("socket buffer saturates and throughput falls again (Table 2).")
}
