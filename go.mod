module mobbr

go 1.22
